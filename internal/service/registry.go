// Package service turns the simulators into a long-running walk service:
// a graph registry caching datasets, a job manager with a bounded queue
// and cooperative cancellation, and an HTTP/JSON API (http.go) that
// cmd/flashwalkerd serves.
package service

import (
	"fmt"
	"sort"
	"sync"

	"flashwalker/internal/errs"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
)

// GraphInfo describes one registry entry for the API.
type GraphInfo struct {
	// Name is the registry key jobs reference.
	Name string `json:"name"`
	// Source is "dataset" for built-in Table IV analogues, "file" for
	// graphs loaded from disk.
	Source string `json:"source"`
	// Loaded reports whether the graph is materialized in memory
	// (datasets generate lazily on first use).
	Loaded bool `json:"loaded"`
	// Vertices and Edges are zero until the graph is loaded.
	Vertices uint64 `json:"vertices"`
	Edges    uint64 `json:"edges"`
}

type regEntry struct {
	ds     harness.Dataset
	source string

	mu  sync.Mutex
	g   *graph.Graph
	err error
}

// graph materializes the entry's graph, once, caching the outcome.
func (e *regEntry) graph() (*graph.Graph, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.g == nil && e.err == nil {
		e.g, e.err = e.ds.Graph()
	}
	return e.g, e.err
}

// Registry maps graph names to datasets (built-in or file-backed). It is
// safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
}

// NewRegistry returns a registry prepopulated with the five scaled
// Table IV dataset analogues plus the extra presets (the multi-board
// MB-S). Their graphs generate lazily on first use.
func NewRegistry() *Registry {
	r := &Registry{entries: map[string]*regEntry{}}
	for _, d := range harness.Datasets() {
		r.entries[d.Name] = &regEntry{ds: d, source: "dataset"}
	}
	for _, d := range harness.ExtraDatasets() {
		r.entries[d.Name] = &regEntry{ds: d, source: "dataset"}
	}
	return r
}

// Load registers a graph from a file under the given name. The file is
// read immediately so a bad path fails the request, not a later job.
func (r *Registry) Load(name, path string) (GraphInfo, error) {
	if name == "" {
		return GraphInfo{}, fmt.Errorf("service: graph name must be non-empty: %w", errs.ErrInvalidConfig)
	}
	g, err := graph.Load(path)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("service: loading graph %q: %w", name, err)
	}
	// File graphs borrow the dataset shape so the harness config
	// derivation applies unchanged; the scaled TT-S parameters are the
	// generic defaults for an unknown graph.
	ds := harness.Dataset{
		Name: name, Mirrors: "file:" + path, IDBytes: 4,
		SubgraphBytes: 4 << 10, DefaultWalks: 100_000,
	}
	e := &regEntry{ds: ds, source: "file", g: g}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return GraphInfo{}, fmt.Errorf("service: graph %q already registered: %w", name, errs.ErrInvalidConfig)
	}
	r.entries[name] = e
	return info(name, e), nil
}

// Get returns the named graph and its dataset-shaped configuration,
// materializing built-in datasets on first use. Unknown names report an
// error wrapping errs.ErrUnknownDataset.
func (r *Registry) Get(name string) (*graph.Graph, harness.Dataset, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return nil, harness.Dataset{}, fmt.Errorf("service: graph %q not registered: %w", name, errs.ErrUnknownDataset)
	}
	g, err := e.graph()
	if err != nil {
		return nil, harness.Dataset{}, err
	}
	return g, e.ds, nil
}

// List returns every registered graph, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]GraphInfo, 0, len(names))
	for _, name := range names {
		out = append(out, info(name, r.entries[name]))
	}
	r.mu.Unlock()
	return out
}

func info(name string, e *regEntry) GraphInfo {
	gi := GraphInfo{Name: name, Source: e.source}
	e.mu.Lock()
	if e.g != nil {
		gi.Loaded = true
		gi.Vertices = e.g.NumVertices()
		gi.Edges = e.g.NumEdges()
	}
	e.mu.Unlock()
	return gi
}
