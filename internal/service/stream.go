package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"flashwalker/internal/blob"
	"flashwalker/internal/graph"
)

// Streaming walk export. Each streamable job owns a jobStream: a bounded
// in-memory ring of completed-walk records fed by the engine's export
// callback, drained by any number of concurrent HTTP readers. The engine
// side NEVER blocks — publish only appends (to the ring when there is room,
// to the service-side pending overflow otherwise), so a stalled or absent
// consumer cannot perturb the simulated timeline. Back-pressure instead
// falls on the ring: records are not evicted past the slowest attached
// reader, so a stalled reader pauses eviction (pending grows, bounded by
// the job's walk count) rather than pausing the engine.
//
// When the job is durable (manager has a blob store) every record is also
// appended to a spool blob, streams/<id>.ndjson, in the exact wire format.
// The spool serves two purposes: replay for readers that ask for offsets
// already evicted from the ring, and recovery — after a restart the stream
// resumes at the spool's contiguous record count, so ?from=seq never
// observes a gap (the engine flushes the export buffer before every
// snapshot, hence spooled records always cover the snapshot the job
// resumes from).

var (
	// ErrNoStream reports a job kind that does not produce a walk stream.
	ErrNoStream = errors.New("job does not produce a walk stream")
	// ErrStreamEvicted reports a ?from= offset already evicted from the
	// in-memory ring with no spool to replay it from.
	ErrStreamEvicted = errors.New("requested stream offset no longer available")
)

// WalkRecord is one completed walk on the wire (one NDJSON line).
type WalkRecord struct {
	// Seq is the walk's position in the job-wide finish order: gapless
	// from 0, stable across restarts, usable as a resume offset.
	Seq uint64 `json:"seq"`
	// Src and End are the walk's start and final vertices.
	Src graph.VertexID `json:"src"`
	End graph.VertexID `json:"end"`
	// Hops is the number of hops actually taken.
	Hops uint32 `json:"hops"`
	// DeadEnd marks a walk retired early at a sink vertex.
	DeadEnd bool `json:"dead_end,omitempty"`
	// SimTimeNS is the simulated retirement time (simulator kinds only).
	SimTimeNS int64 `json:"sim_time_ns,omitempty"`
	// Path is the full vertex sequence (deepwalk corpus jobs only).
	Path []graph.VertexID `json:"path,omitempty"`
}

// StreamEnd is the trailer frame closing an NDJSON stream: after it, no
// further records exist ("done") or the client should reconnect from
// NextSeq once more walks have finished.
type StreamEnd struct {
	Done    bool   `json:"done"`
	State   string `json:"state"`
	NextSeq uint64 `json:"next_seq"`
	Error   string `json:"error,omitempty"`
}

// streamBatch bounds how many records a reader serves per lock acquisition
// (and per HTTP flush).
const streamBatch = 256

// defaultStreamRing is the per-job ring capacity when Config.StreamRingWalks
// is zero.
const defaultStreamRing = 4096

// jobStream buffers one job's completed walks between the engine and its
// readers.
type jobStream struct {
	mu  sync.Mutex
	cap int

	// ring holds the contiguous window [first, first+len(ring)); ring[i]
	// has Seq first+i.
	ring  []WalkRecord
	first uint64
	// pending is the service-side overflow: records admitted (spooled,
	// counted in next) but not yet in the ring because eviction is pinned
	// by a slow reader.
	pending []WalkRecord
	// next is the count of admitted records — the seq the next new record
	// must carry; duplicates below it (resumed runs re-emit the tail after
	// the snapshot cut) are dropped on publish.
	next uint64
	// maxDel is the furthest position any reader has been served; it is
	// the eviction floor when no reader is attached, so a job nobody
	// watches still caps its memory at the ring.
	maxDel  uint64
	readers map[*streamReader]uint64

	closed bool
	state  string // terminal job state once closed
	errMsg string
	// notify is closed-and-replaced whenever there is new data or a state
	// change; readers wait on the instance they captured under the lock.
	notify chan struct{}

	spool *spoolFile
}

func newJobStream(capacity int, spool *spoolFile) *jobStream {
	if capacity <= 0 {
		capacity = defaultStreamRing
	}
	s := &jobStream{
		cap:     capacity,
		readers: map[*streamReader]uint64{},
		notify:  make(chan struct{}),
	}
	if spool != nil {
		s.spool = spool
		s.first = spool.count
		s.next = spool.count
		s.maxDel = spool.count
	}
	return s
}

// publish admits a batch of records in seq order. Engine-side: never
// blocks, only appends. Records below next are re-emissions (resume
// overlap) and are dropped; a gap above next can only follow a spool
// truncated by a crash mid-batch, in which case the ring window restarts
// at the incoming seq (readers in the gap replay from the spool or get
// ErrStreamEvicted).
func (s *jobStream) publish(recs []WalkRecord) {
	if len(recs) == 0 {
		return
	}
	s.mu.Lock()
	admitted := false
	for _, r := range recs {
		if r.Seq < s.next {
			continue
		}
		if r.Seq > s.next {
			if len(s.ring) == 0 && len(s.pending) == 0 {
				s.first = r.Seq
			} else {
				continue
			}
		}
		if s.spool != nil && r.Seq == s.spool.count {
			// Only contiguous records go to disk; recovery truncates the
			// spool to its gapless prefix anyway.
			s.spool.append(&r)
		}
		s.pending = append(s.pending, r)
		s.next = r.Seq + 1
		admitted = true
	}
	if admitted {
		if s.spool != nil {
			s.spool.flush()
		}
		s.fill()
		s.wake()
	}
	s.mu.Unlock()
}

// finish marks the stream closed with the job's terminal state.
func (s *jobStream) finish(state string, errMsg string) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.state = state
		s.errMsg = errMsg
		if s.spool != nil {
			s.spool.flush()
		}
		s.wake()
	}
	s.mu.Unlock()
}

// wake signals every waiting reader. Callers hold s.mu.
func (s *jobStream) wake() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// floor returns the lowest position eviction must preserve. Callers hold
// s.mu.
func (s *jobStream) floor() uint64 {
	f := s.maxDel
	for _, pos := range s.readers {
		if pos < f {
			f = pos
		}
	}
	return f
}

// fill moves pending records into the ring, evicting served records from
// the head when the ring is full — but never past the floor. Callers hold
// s.mu. Readers call this too (via next), so a stream that stopped
// publishing still drains its overflow as readers advance.
func (s *jobStream) fill() {
	for len(s.pending) > 0 {
		if len(s.ring) >= s.cap {
			evictable := int(s.floor() - s.first)
			if evictable <= 0 {
				return
			}
			need := len(s.pending)
			if need > evictable {
				need = evictable
			}
			if need > len(s.ring) {
				need = len(s.ring)
			}
			s.ring = append(s.ring[:0], s.ring[need:]...)
			s.first += uint64(need)
		}
		room := s.cap - len(s.ring)
		if room > len(s.pending) {
			room = len(s.pending)
		}
		s.ring = append(s.ring, s.pending[:room]...)
		s.pending = append(s.pending[:0], s.pending[room:]...)
	}
	if cap(s.pending) > 4*s.cap {
		s.pending = nil
	}
}

// attach registers a reader at position from. Offsets before the retained
// window are served from the spool when one exists; without a spool they
// fail with ErrStreamEvicted (the error message carries the first
// available offset). Offsets beyond next are legal: the reader waits for
// the walks to finish.
func (s *jobStream) attach(from uint64) (*streamReader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.first && s.spool == nil {
		return nil, fmt.Errorf("offset %d evicted, first available is %d: %w",
			from, s.first, ErrStreamEvicted)
	}
	r := &streamReader{s: s, pos: from}
	s.readers[r] = from
	return r, nil
}

// streamReader is one consumer's cursor into the stream.
type streamReader struct {
	s   *jobStream
	pos uint64
	sc  *spoolScanner
}

// detach unregisters the reader, releasing its eviction pin.
func (r *streamReader) detach() {
	s := r.s
	s.mu.Lock()
	delete(s.readers, r)
	s.fill() // the pin may have been the only thing blocking the overflow
	s.wake()
	s.mu.Unlock()
	r.sc = nil
}

// Pos is the next seq this reader will be served.
func (r *streamReader) Pos() uint64 { return r.pos }

// next returns the next batch of records, blocking until data is
// available, the stream closes, or ctx is done. A nil batch with a
// non-nil end means the stream is complete; a nil batch with nil end
// never happens without an error.
func (r *streamReader) next(ctx context.Context) ([]WalkRecord, *StreamEnd, error) {
	s := r.s
	for {
		s.mu.Lock()
		// The reader drives the overflow drain: with publishing finished
		// and this reader pinning the floor, nobody else will move
		// pending into the ring.
		s.fill()
		if r.pos < s.first {
			// Behind the retained window — replay from the spool (attach
			// guaranteed one exists).
			limit := s.first
			s.mu.Unlock()
			batch, err := r.spoolBatch(limit)
			if err != nil {
				return nil, nil, err
			}
			if len(batch) > 0 {
				r.pos = batch[len(batch)-1].Seq + 1
				s.mu.Lock()
				s.readers[r] = r.pos
				s.mu.Unlock()
				return batch, nil, nil
			}
			// Spool exhausted below the window: the missing records were
			// lost to a crash mid-batch. Resync at the window start.
			r.pos = limit
			continue
		}
		if r.pos < s.first+uint64(len(s.ring)) {
			i := int(r.pos - s.first)
			n := len(s.ring) - i
			if n > streamBatch {
				n = streamBatch
			}
			batch := append([]WalkRecord(nil), s.ring[i:i+n]...)
			r.pos += uint64(n)
			s.readers[r] = r.pos
			if r.pos > s.maxDel {
				s.maxDel = r.pos
			}
			// Advancing the floor may unblock the overflow for everyone.
			s.fill()
			s.wake()
			s.mu.Unlock()
			return batch, nil, nil
		}
		if s.closed && len(s.pending) == 0 {
			end := &StreamEnd{Done: true, State: s.state, NextSeq: r.pos, Error: s.errMsg}
			s.mu.Unlock()
			return nil, end, nil
		}
		ch := s.notify
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-ch:
		}
	}
}

// spoolBatch reads up to streamBatch records with r.pos <= Seq < limit
// from the spool. A scanner reads a point-in-time copy of the spool blob,
// so when it comes back empty the reader retries once over a fresh copy —
// records appended since the copy was taken must not be mistaken for
// records lost to a crash (that misdiagnosis would make the caller resync
// past them, silently skipping data that exists in the store).
func (r *streamReader) spoolBatch(limit uint64) ([]WalkRecord, error) {
	fresh := false
	if r.sc == nil || r.sc.next > r.pos {
		sc, err := openSpoolScanner(r.s.spool.store, r.s.spool.key)
		if err != nil {
			return nil, err
		}
		r.sc = sc
		fresh = true
	}
	for {
		var out []WalkRecord
		for len(out) < streamBatch {
			rec, err := r.sc.scan()
			if err != nil {
				if err == io.EOF {
					break
				}
				return nil, err
			}
			if rec.Seq < r.pos {
				continue
			}
			if rec.Seq >= limit {
				r.sc.unread(rec)
				break
			}
			out = append(out, rec)
		}
		if len(out) > 0 || fresh {
			return out, nil
		}
		sc, err := openSpoolScanner(r.s.spool.store, r.s.spool.key)
		if err != nil {
			return nil, err
		}
		r.sc = sc
		fresh = true
	}
}

// spoolFile is the append side of a stream's NDJSON spool blob. All
// methods are called under the owning jobStream's lock. Records are
// encoded into an in-memory buffer and shipped to the store with Append
// on flush (publish flushes after every admitted batch).
type spoolFile struct {
	store blob.Store
	key   string
	buf   bytes.Buffer
	enc   *json.Encoder
	count uint64 // contiguous records in the store
	err   error  // first write error; spooling stops after one
	// onErr reports the first failed store write to the manager's
	// persist-error accounting (nil-safe).
	onErr func(error)
}

// openSpool opens (creating or recovering) the spool blob at key.
// Existing contents are verified for seq contiguity from 0; a torn or
// non-contiguous tail left by a crash mid-append is cut back to the
// longest valid prefix so appends continue gaplessly.
func openSpool(store blob.Store, key string, onErr func(error)) (*spoolFile, error) {
	data, err := store.Get(key)
	if err != nil && !errors.Is(err, blob.ErrNotFound) {
		return nil, err
	}
	count, off := countSpool(data)
	if int64(len(data)) != off {
		if err := store.Put(key, data[:off]); err != nil {
			return nil, err
		}
	}
	s := &spoolFile{store: store, key: key, count: count, onErr: onErr}
	s.enc = json.NewEncoder(&s.buf)
	return s, nil
}

// countSpool returns the number of contiguous records (Seq 0,1,2,...) at
// the start of the spool bytes, and the byte offset just past the last
// valid one. Nil data is an empty spool.
func countSpool(data []byte) (count uint64, off int64) {
	br := bufio.NewReader(bytes.NewReader(data))
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// Torn tail (no newline): keep the valid prefix.
			return count, off
		}
		var rec WalkRecord
		if json.Unmarshal(bytes.TrimSpace(line), &rec) != nil || rec.Seq != count {
			return count, off
		}
		count++
		off += int64(len(line))
	}
}

func (s *spoolFile) append(rec *WalkRecord) {
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(rec); err != nil {
		s.fail(err)
		return
	}
	s.count++
}

func (s *spoolFile) flush() {
	if s.err != nil || s.buf.Len() == 0 {
		return
	}
	if err := s.store.Append(s.key, s.buf.Bytes()); err != nil {
		s.fail(err)
		return
	}
	s.buf.Reset()
}

// fail latches the spool's first error and reports it once.
func (s *spoolFile) fail(err error) {
	s.err = err
	if s.onErr != nil {
		s.onErr(err)
	}
}

// spoolScanner reads wire records back out of a point-in-time copy of the
// spool blob, in order.
type spoolScanner struct {
	br     *bufio.Reader
	next   uint64 // seq of the next record scan will return
	peeked *WalkRecord
}

func openSpoolScanner(store blob.Store, key string) (*spoolScanner, error) {
	data, err := store.Get(key)
	if err != nil {
		if errors.Is(err, blob.ErrNotFound) {
			data = nil
		} else {
			return nil, err
		}
	}
	return &spoolScanner{br: bufio.NewReader(bytes.NewReader(data))}, nil
}

// scan returns the next record, or io.EOF at the end of the valid prefix.
func (sc *spoolScanner) scan() (WalkRecord, error) {
	if sc.peeked != nil {
		rec := *sc.peeked
		sc.peeked = nil
		sc.next = rec.Seq + 1
		return rec, nil
	}
	line, err := sc.br.ReadBytes('\n')
	if err != nil {
		return WalkRecord{}, io.EOF
	}
	var rec WalkRecord
	if json.Unmarshal(bytes.TrimSpace(line), &rec) != nil {
		return WalkRecord{}, io.EOF
	}
	sc.next = rec.Seq + 1
	return rec, nil
}

// unread pushes rec back so the next scan returns it again.
func (sc *spoolScanner) unread(rec WalkRecord) {
	sc.peeked = &rec
	sc.next = rec.Seq
}
