package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func newTestManagerCfg(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// drainStream reads a job's stream from offset from to the trailer,
// failing on any gap or duplicate.
func drainStream(t *testing.T, j *Job, from uint64) ([]WalkRecord, *StreamEnd) {
	t.Helper()
	rd, err := j.stream.attach(from)
	if err != nil {
		t.Fatalf("attach(%d): %v", from, err)
	}
	defer rd.detach()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var recs []WalkRecord
	next := from
	for {
		batch, end, err := rd.next(ctx)
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		if end != nil {
			return recs, end
		}
		for _, r := range batch {
			if r.Seq != next {
				t.Fatalf("stream gap: got seq %d, want %d", r.Seq, next)
			}
			next++
			recs = append(recs, r)
		}
	}
}

// TestStreamDeliversEveryWalk: a flashwalker job's stream is gapless from
// 0, matches the result's finished count, and the trailer carries the
// job's terminal state.
func TestStreamDeliversEveryWalk(t *testing.T) {
	m := newTestManagerCfg(t, Config{Workers: 1})
	j, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 700, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	recs, end := drainStream(t, j, 0)
	<-j.Done()
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	if want := st.Result.Completed + st.Result.DeadEnded; len(recs) != want {
		t.Fatalf("streamed %d walks, result finished %d", len(recs), want)
	}
	if !end.Done || end.State != StateDone || end.NextSeq != uint64(len(recs)) {
		t.Fatalf("bad trailer: %+v", end)
	}
}

// TestStreamStalledConsumerNeverBlocksEngine is the back-pressure proof:
// with a tiny ring and a reader attached at 0 that never reads (pinning
// the eviction floor), the job must still run to completion — the engine
// side of the stream only appends, so a stalled consumer cannot hold the
// simulated timeline hostage. The ring stays bounded; the overflow holds
// the rest; and a later drain still sees every record.
func TestStreamStalledConsumerNeverBlocksEngine(t *testing.T) {
	const ring = 64
	m := newTestManagerCfg(t, Config{Workers: 1, StreamRingWalks: ring})
	j, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// The stalled reader: attaches at 0, never calls next.
	stalled, err := j.stream.attach(0)
	if err != nil {
		t.Fatal(err)
	}

	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("job did not finish with a stalled stream consumer attached")
	}
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}

	j.stream.mu.Lock()
	ringLen, pendLen := len(j.stream.ring), len(j.stream.pending)
	j.stream.mu.Unlock()
	if ringLen > ring {
		t.Fatalf("ring grew to %d records past its %d cap", ringLen, ring)
	}
	if total := st.Result.Completed + st.Result.DeadEnded; ringLen+pendLen != total {
		t.Fatalf("ring %d + overflow %d != %d finished walks", ringLen, pendLen, total)
	}

	// The stalled reader wakes up: everything is still there, in order.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	next := uint64(0)
	for {
		batch, end, err := stalled.next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if end != nil {
			break
		}
		for _, r := range batch {
			if r.Seq != next {
				t.Fatalf("gap after stall: got seq %d, want %d", r.Seq, next)
			}
			next++
		}
	}
	stalled.detach()
	if next != uint64(st.Result.Completed+st.Result.DeadEnded) {
		t.Fatalf("stalled reader drained %d records, want %d", next, st.Result.Completed+st.Result.DeadEnded)
	}
}

// TestStreamDoesNotPerturbResult: the same spec run with an actively
// drained stream and with no stream consumer at all produces the
// identical result — the deterministic-timeline invariant at the service
// layer.
func TestStreamDoesNotPerturbResult(t *testing.T) {
	m := newTestManagerCfg(t, Config{Workers: 1, StreamRingWalks: 32})
	spec := JobSpec{Graph: "TT-S", NumWalks: 1500, Seed: 7}

	j1, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := drainStream(t, j1, 0)
	<-j1.Done()

	j2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()

	r1, r2 := j1.Status().Result, j2.Status().Result
	if r1 == nil || r2 == nil || *r1 != *r2 {
		t.Fatalf("streaming changed the result:\nwith    %+v\nwithout %+v", r1, r2)
	}
	if len(recs) != r1.Completed+r1.DeadEnded {
		t.Fatalf("streamed %d records, result finished %d", len(recs), r1.Completed+r1.DeadEnded)
	}
}

// TestStreamResumeOffsets: a reader detaching mid-stream and re-attaching
// at its next offset sees no gaps and no duplicates; an offset beyond the
// admitted count waits and then delivers from exactly there.
func TestStreamResumeOffsets(t *testing.T) {
	m := newTestManagerCfg(t, Config{Workers: 1})
	j, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 1200, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// First connection: read one batch, then disconnect.
	rd, err := j.stream.attach(0)
	if err != nil {
		t.Fatal(err)
	}
	var got []WalkRecord
	for len(got) == 0 {
		batch, end, err := rd.next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if end != nil {
			t.Fatal("stream ended before delivering any records")
		}
		got = append(got, batch...)
	}
	resumeAt := rd.Pos()
	rd.detach()

	// Reconnect at the resume offset: continuation, no gaps, no dups.
	rest, end := drainStream(t, j, resumeAt)
	if len(rest) > 0 && rest[0].Seq != resumeAt {
		t.Fatalf("reconnect at %d delivered seq %d first", resumeAt, rest[0].Seq)
	}
	<-j.Done()
	total := j.Status().Result.Completed + j.Status().Result.DeadEnded
	if int(resumeAt)+len(rest) != total {
		t.Fatalf("reconnect drained %d+%d records, want %d", resumeAt, len(rest), total)
	}
	if !end.Done {
		t.Fatalf("bad trailer: %+v", end)
	}

	// A future offset parks until the stream closes, then trailers.
	future, ferr := j.stream.attach(uint64(total) + 10)
	if ferr != nil {
		t.Fatal(ferr)
	}
	defer future.detach()
	batch, fend, err := future.next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if batch != nil || fend == nil || !fend.Done {
		t.Fatalf("future offset delivered %v / %+v", batch, fend)
	}
}

// TestStreamCancelWhileStreaming: canceling a job mid-stream closes the
// stream with a "canceled" trailer after the partial records.
func TestStreamCancelWhileStreaming(t *testing.T) {
	m := newTestManagerCfg(t, Config{Workers: 1})
	j, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 200_000, Seed: 9, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := j.stream.attach(0)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.detach()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Read until some records arrive, cancel, then drain to the trailer.
	next := uint64(0)
	canceled := false
	for {
		batch, end, err := rd.next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if end != nil {
			if end.State != StateCanceled {
				t.Fatalf("trailer state %q, want canceled", end.State)
			}
			if end.NextSeq != next {
				t.Fatalf("trailer next_seq %d, reader saw %d", end.NextSeq, next)
			}
			break
		}
		for _, r := range batch {
			if r.Seq != next {
				t.Fatalf("gap: got seq %d, want %d", r.Seq, next)
			}
			next++
		}
		if !canceled && next > 0 {
			if err := m.Cancel(j.ID); err != nil {
				t.Fatal(err)
			}
			canceled = true
		}
	}
	<-j.Done()
	if st := j.Status(); st.State != StateCanceled {
		t.Fatalf("job state %s after cancel", st.State)
	}
}

// TestStreamEvictedWithoutSpool: with no state dir, an offset already
// evicted from the ring is refused with ErrStreamEvicted instead of
// silently skipping records.
func TestStreamEvictedWithoutSpool(t *testing.T) {
	const ring = 16
	m := newTestManagerCfg(t, Config{Workers: 1, StreamRingWalks: ring})
	j, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 1000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Drain fully with no other readers: the floor advances, old records
	// are evicted.
	recs, _ := drainStream(t, j, 0)
	<-j.Done()
	if len(recs) <= ring {
		t.Fatalf("job finished only %d walks; test needs more than the ring (%d)", len(recs), ring)
	}
	if _, err := j.stream.attach(0); err == nil {
		t.Fatal("attach(0) succeeded after eviction with no spool")
	} else if got, _ := httpError(err); got != 410 {
		t.Fatalf("evicted offset mapped to HTTP %d, want 410", got)
	}
}

// TestStreamDeepWalkCorpusAndCacheHit: a deepwalk job streams its paths;
// an identical resubmission served from the corpus cache streams the
// exact same records.
func TestStreamDeepWalkCorpusAndCacheHit(t *testing.T) {
	m := newTestManagerCfg(t, Config{Workers: 1})
	spec := JobSpec{Kind: KindDeepWalk, Graph: "TT-S", Seed: 11, WalksPerVertex: 1, WalkLength: 8}

	j1, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs1, end1 := drainStream(t, j1, 0)
	<-j1.Done()
	if end1.State != StateDone {
		t.Fatalf("deepwalk trailer: %+v", end1)
	}
	if len(recs1) == 0 || len(recs1[0].Path) == 0 {
		t.Fatal("deepwalk stream has no paths")
	}
	if runs := m.CorpusEngineRuns(); runs != 1 {
		t.Fatalf("engine runs after first job: %d", runs)
	}

	j2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs2, _ := drainStream(t, j2, 0)
	<-j2.Done()
	if runs := m.CorpusEngineRuns(); runs != 1 {
		t.Fatalf("cache-served job re-ran the engine (%d runs)", runs)
	}
	if len(recs1) != len(recs2) {
		t.Fatalf("cache-served stream has %d records, original %d", len(recs2), len(recs1))
	}
	for i := range recs1 {
		if recs1[i].Seq != recs2[i].Seq || recs1[i].Src != recs2[i].Src ||
			recs1[i].End != recs2[i].End || recs1[i].Hops != recs2[i].Hops ||
			len(recs1[i].Path) != len(recs2[i].Path) {
			t.Fatalf("record %d differs between engine and cache:\n %+v\n %+v", i, recs1[i], recs2[i])
		}
	}
}

// TestStreamSpoolSurvivesRestart: a durable job's stream replays entirely
// from the spool after the manager restarts, and the recovered stream's
// records match the original run's.
func TestStreamSpoolSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m1, err := NewManager(NewRegistry(), Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.Submit(JobSpec{Graph: "TT-S", NumWalks: 900, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := drainStream(t, j1, 0)
	<-j1.Done()
	id := j1.ID
	m1.Close()

	if _, err := filepath.Glob(filepath.Join(dir, "streams", "*.ndjson")); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManagerCfg(t, Config{Workers: 1, StateDir: dir})
	j2, err := m2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if j2.stream == nil {
		t.Fatal("recovered job lost its stream")
	}
	got, end := drainStream(t, j2, 0)
	if end.State != StateDone {
		t.Fatalf("recovered trailer: %+v", end)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered stream has %d records, original %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("recovered record %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestGraphWalkerHasNoStream: the host baseline doesn't export walks; the
// API reports that as stream_unsupported rather than hanging.
func TestGraphWalkerHasNoStream(t *testing.T) {
	m := newTestManagerCfg(t, Config{Workers: 1})
	j, err := m.Submit(JobSpec{Kind: KindGraphWalker, Graph: "TT-S", NumWalks: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.stream != nil {
		t.Fatal("graphwalker job grew a stream")
	}
}

// TestFairQueueRotation exercises the queue directly: round-robin across
// tenants, canRun skipping, and exact bookkeeping through interleaved
// push/pop.
func TestFairQueueRotation(t *testing.T) {
	fq := newFairQueue(16)
	mk := func(tenant, id string) *Job {
		return &Job{ID: id, Spec: JobSpec{Tenant: tenant}}
	}
	// a floods, then b and c each queue one.
	for i := 0; i < 4; i++ {
		if !fq.push("a", mk("a", fmt.Sprintf("a%d", i))) {
			t.Fatal("push failed below depth")
		}
	}
	fq.push("b", mk("b", "b0"))
	fq.push("c", mk("c", "c0"))

	var order []string
	for j := fq.pop(nil); j != nil; j = fq.pop(nil) {
		order = append(order, j.ID)
	}
	want := []string{"a0", "b0", "c0", "a1", "a2", "a3"}
	if len(order) != len(want) {
		t.Fatalf("popped %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fair-share order %v, want %v", order, want)
		}
	}
	if fq.len() != 0 {
		t.Fatalf("queue reports %d jobs after draining", fq.len())
	}

	// canRun skipping: with tenant a capped out, b's job pops first even
	// though a is ahead in rotation.
	fq.push("a", mk("a", "a4"))
	fq.push("b", mk("b", "b1"))
	j := fq.pop(func(tenant string) bool { return tenant != "a" })
	if j == nil || j.ID != "b1" {
		t.Fatalf("capped-tenant pop returned %+v, want b1", j)
	}
	if j = fq.pop(func(string) bool { return false }); j != nil {
		t.Fatalf("pop with all tenants capped returned %s", j.ID)
	}
	if j = fq.pop(nil); j == nil || j.ID != "a4" {
		t.Fatalf("uncapped pop returned %+v, want a4", j)
	}
}

// TestAdmissionQuotaRateAndMetrics covers the three 429 paths end to end
// on the manager: distinct sentinels for queue-full, tenant quota, and
// rate limit, each with its labeled rejection counter.
func TestAdmissionQuotaRateAndMetrics(t *testing.T) {
	m := newTestManagerCfg(t, Config{
		Workers: 1, QueueDepth: 8,
		TenantMaxQueued:  1,
		TenantRatePerSec: 0.001, TenantRateBurst: 3,
	})
	long := JobSpec{Graph: "TT-S", NumWalks: 200_000, Seed: 1, CheckpointEvery: 64, Tenant: "acme"}

	// First submission runs, second queues (quota 1), third trips the
	// queued-job quota, fourth (other tenant) is admitted, fifth drains
	// acme's 3-token burst.
	j1, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, j1.ID)
	if _, err := m.Submit(long); err != nil {
		t.Fatalf("second submit (should queue): %v", err)
	}
	_, err = m.Submit(long)
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third submit error %v, want ErrTenantQuota", err)
	}
	other := long
	other.Tenant = "rival"
	if _, err := m.Submit(other); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	_, err = m.Submit(other) // rival's queue spot taken... quota again
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("rival quota error %v", err)
	}
	// acme has used its 3 burst tokens (refill is ~1 per 17 min): the next
	// submission is rate-limited before the quota check can reject it.
	_, err = m.Submit(long)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst-exhausted submit error %v, want ErrRateLimited", err)
	}

	metrics := m.Metrics()
	for _, want := range []string{
		`flashwalker_admission_rejected_total{reason="tenant_quota"} 2`,
		`flashwalker_admission_rejected_total{reason="rate_limited"} 1`,
		`flashwalker_admission_rejected_total{reason="queue_full"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	for _, id := range []string{"job-1", "job-2", "job-3", "job-4"} {
		_ = m.Cancel(id)
	}
}

// TestTenantFairShareNoStarvation: with one worker and tenant "flood"
// holding a deep backlog, a late job from tenant "mouse" is dispatched
// next instead of waiting behind the whole backlog.
func TestTenantFairShareNoStarvation(t *testing.T) {
	m := newTestManagerCfg(t, Config{Workers: 1, QueueDepth: 16})
	short := JobSpec{Graph: "TT-S", NumWalks: 300, Tenant: "flood"}

	// One job occupies the worker while the backlog builds, so ordering
	// below is decided purely by the fair-share dequeue.
	hog, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 100_000, CheckpointEvery: 64, Tenant: "flood"})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, hog.ID)
	var floodIDs []string
	for i := 0; i < 5; i++ {
		s := short
		s.Seed = uint64(i)
		j, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		floodIDs = append(floodIDs, j.ID)
	}
	mouse, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 300, Seed: 99, Tenant: "mouse"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(hog.ID); err != nil {
		t.Fatal(err)
	}

	<-mouse.Done()
	mouseDone := *mouse.Status().FinishedAt
	// Fair share: mouse's lone job must not finish after flood's whole
	// backlog. It is dispatched second (flood, mouse, flood, flood, ...),
	// so at least one flood job must still be unfinished when mouse ends.
	later := 0
	for _, id := range floodIDs {
		j, _ := m.Get(id)
		<-j.Done()
		if j.Status().FinishedAt.After(mouseDone) {
			later++
		}
	}
	if later == 0 {
		t.Fatal("fair-share dequeue starved the small tenant: every flood job finished first")
	}
}

func waitRunning(t *testing.T, m *Manager, id string) {
	t.Helper()
	j, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state == StateRunning {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, state)
		}
		time.Sleep(time.Millisecond)
	}
}
