package sim

import "testing"

// applierRecorder is a minimal "mutable model": a value events read, and a
// timestamped change list the applier hook replays with a cursor, mirroring
// exactly how core replays a mutation stream.
type applierRecorder struct {
	value   int
	changes []struct {
		at  Time
		val int
	}
	cursor int
}

func (r *applierRecorder) apply(next Time) {
	for r.cursor < len(r.changes) && r.changes[r.cursor].at <= next {
		r.value = r.changes[r.cursor].val
		r.cursor++
	}
}

// TestApplierVisibility pins the visibility rule: a change stamped T is
// seen by the first event at time >= T and by no event before it.
func TestApplierVisibility(t *testing.T) {
	cases := []struct {
		name       string
		eventTimes []Time
		changeAt   Time
		// Index of the first event that must observe the change; -1 = none.
		firstVisible int
	}{
		{"between events", []Time{10, 20, 30}, 15, 1},
		{"exactly at an event", []Time{10, 20, 30}, 20, 1},
		{"before the first event", []Time{10, 20, 30}, 0, 0},
		{"after the last event", []Time{10, 20, 30}, 31, -1},
		{"at the first event", []Time{10, 20, 30}, 10, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New()
			r := &applierRecorder{}
			r.changes = append(r.changes, struct {
				at  Time
				val int
			}{tc.changeAt, 1})
			seen := make([]int, 0, len(tc.eventTimes))
			for _, at := range tc.eventTimes {
				e.At(at, func() { seen = append(seen, r.value) })
			}
			e.SetApplier(r.apply)
			e.Run()
			for i, v := range seen {
				want := 0
				if tc.firstVisible >= 0 && i >= tc.firstVisible {
					want = 1
				}
				if v != want {
					t.Fatalf("event %d (t=%v) saw value %d, want %d", i, tc.eventTimes[i], v, want)
				}
			}
		})
	}
}

// TestApplierEqualTimestampsStreamOrder pins that changes sharing one
// timestamp apply in stream order, atomically before the first event at or
// after that time: the event sees the LAST value, never an intermediate.
func TestApplierEqualTimestampsStreamOrder(t *testing.T) {
	e := New()
	r := &applierRecorder{}
	for i, v := range []int{7, 3, 9} {
		_ = i
		r.changes = append(r.changes, struct {
			at  Time
			val int
		}{5, v})
	}
	var got []int
	e.At(4, func() { got = append(got, r.value) })
	e.At(5, func() { got = append(got, r.value) })
	e.At(6, func() { got = append(got, r.value) })
	e.SetApplier(r.apply)
	e.Run()
	want := []int{0, 9, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d saw %d, want %d (got %v)", i, got[i], want[i], want)
		}
	}
	if r.cursor != len(r.changes) {
		t.Fatalf("cursor = %d, want %d", r.cursor, len(r.changes))
	}
}

// TestApplierRunUntil pins the same visibility rule under the deadline
// drain: changes beyond the deadline stay unapplied even though the clock
// advances to the deadline.
func TestApplierRunUntil(t *testing.T) {
	e := New()
	r := &applierRecorder{}
	r.changes = append(r.changes,
		struct {
			at  Time
			val int
		}{15, 1},
		struct {
			at  Time
			val int
		}{40, 2},
	)
	var got []int
	e.At(10, func() { got = append(got, r.value) })
	e.At(20, func() { got = append(got, r.value) })
	e.At(50, func() { got = append(got, r.value) })
	e.SetApplier(r.apply)
	if end := e.RunUntil(30); end != 30 {
		t.Fatalf("RunUntil = %v, want 30", end)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("pre-deadline observations = %v, want [0 1]", got)
	}
	// The t=40 change must not have applied: no event at or after it ran.
	if r.cursor != 1 {
		t.Fatalf("cursor = %d after deadline, want 1", r.cursor)
	}
	e.Run()
	if len(got) != 3 || got[2] != 2 {
		t.Fatalf("post-resume observations = %v, want [0 1 2]", got)
	}
}

// TestApplierNoOpHookIsInvisible pins that installing an applier that never
// changes external state leaves the timeline bit-identical: same event
// order, same clock, same processed count.
func TestApplierNoOpHookIsInvisible(t *testing.T) {
	run := func(withHook bool) (order []int, end Time, processed uint64) {
		e := New()
		for i := 0; i < 50; i++ {
			i := i
			// Deliberately colliding timestamps to exercise seq-order ties.
			e.At(Time(i%7)*10, func() { order = append(order, i) })
		}
		if withHook {
			e.SetApplier(func(Time) {})
		}
		end = e.Run()
		processed = e.Processed()
		return
	}
	a, aEnd, aProc := run(false)
	b, bEnd, bProc := run(true)
	if aEnd != bEnd || aProc != bProc {
		t.Fatalf("clock/processed diverged: (%v,%d) vs (%v,%d)", aEnd, aProc, bEnd, bProc)
	}
	if len(a) != len(b) {
		t.Fatalf("order length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order[%d] = %d with hook, %d without", i, b[i], a[i])
		}
	}
}
