package sim

import "testing"

// TestCheckpointHalts proves the hook stops the drain at an event boundary
// and leaves the remaining schedule intact for a resumed Run.
func TestCheckpointHalts(t *testing.T) {
	e := New()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(i*10), func() { fired = append(fired, i) })
	}
	stop := false
	e.SetCheckpoint(1, func() bool { return !stop })
	e.At(25, func() { stop = true }) // fires between event 2 and 3
	e.Run()
	if !e.Halted() {
		t.Fatal("engine did not report halted")
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events before halt, want 3 (got %v)", len(fired), fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock at %v, want 25 (the halting event's time)", e.Now())
	}
	if e.Pending() != 7 {
		t.Fatalf("%d events pending after halt, want 7", e.Pending())
	}

	// Resuming drains the rest in order.
	stop = false
	e.Run()
	if e.Halted() {
		t.Fatal("resumed run reported halted")
	}
	if len(fired) != 10 {
		t.Fatalf("resume fired %d total, want 10", len(fired))
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("events fired out of order: %v", fired)
		}
	}
}

// TestCheckpointDoesNotPerturbTimeline runs the same schedule with and
// without an always-continue hook and checks the observable drain is
// identical: the hook is a pure observer.
func TestCheckpointDoesNotPerturbTimeline(t *testing.T) {
	build := func(e *Engine, log *[]Time) {
		for i := 0; i < 50; i++ {
			at := Time((i * 7) % 50)
			e.At(at, func() { *log = append(*log, e.Now()) })
		}
	}
	var plain, hooked []Time
	a := New()
	build(a, &plain)
	a.Run()

	b := New()
	build(b, &hooked)
	calls := 0
	b.SetCheckpoint(3, func() bool { calls++; return true })
	b.Run()

	if len(plain) != len(hooked) {
		t.Fatalf("drain lengths differ: %d vs %d", len(plain), len(hooked))
	}
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Fatalf("timeline diverged at %d: %v vs %v", i, plain[i], hooked[i])
		}
	}
	if calls == 0 {
		t.Fatal("checkpoint hook never consulted")
	}
	if a.Now() != b.Now() || a.Processed() != b.Processed() {
		t.Fatalf("final state differs: now %v/%v processed %d/%d",
			a.Now(), b.Now(), a.Processed(), b.Processed())
	}
}

// TestCheckpointRunUntil checks the hook halts RunUntil before the deadline
// advance.
func TestCheckpointRunUntil(t *testing.T) {
	e := New()
	n := 0
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() { n++ })
	}
	e.SetCheckpoint(2, func() bool { return n < 2 })
	e.RunUntil(100)
	if !e.Halted() {
		t.Fatal("not halted")
	}
	if e.Now() == 100 {
		t.Fatal("halted run advanced the clock to the deadline")
	}
	e.ClearCheckpoint()
	e.RunUntil(100)
	if e.Halted() || n != 5 || e.Now() != 100 {
		t.Fatalf("after clear: halted=%v n=%d now=%v", e.Halted(), n, e.Now())
	}
}
