package sim

import "testing"

// TestEmitterFiresBetweenEvents proves the emission hook runs on its cadence
// at event boundaries, never halts the drain, and coexists with a checkpoint
// hook on a different interval.
func TestEmitterFiresBetweenEvents(t *testing.T) {
	e := New()
	fired := 0
	for i := 0; i < 20; i++ {
		e.At(Time(i*10), func() { fired++ })
	}
	var emits []uint64
	e.SetEmitter(4, func() { emits = append(emits, e.Processed()) })
	checks := 0
	e.SetCheckpoint(7, func() bool { checks++; return true })
	e.Run()
	if fired != 20 {
		t.Fatalf("fired %d events, want 20 (emitter must not halt the drain)", fired)
	}
	if e.Halted() {
		t.Fatal("emitter-only run reported halted")
	}
	want := []uint64{4, 8, 12, 16, 20}
	if len(emits) != len(want) {
		t.Fatalf("emitter fired at %v, want %v", emits, want)
	}
	for i := range want {
		if emits[i] != want[i] {
			t.Fatalf("emitter fired at %v, want %v", emits, want)
		}
	}
	if checks == 0 {
		t.Fatal("checkpoint hook starved by emitter")
	}
}

// TestEmitterDoesNotPerturbTimeline runs one schedule bare and once with an
// emitter attached and requires a bit-identical drain: the emitter is a pure
// observer, exactly like the checkpoint hook.
func TestEmitterDoesNotPerturbTimeline(t *testing.T) {
	build := func(e *Engine, log *[]Time) {
		for i := 0; i < 50; i++ {
			at := Time((i * 7) % 50)
			e.At(at, func() { *log = append(*log, e.Now()) })
		}
	}
	var plain, hooked []Time
	a := New()
	build(a, &plain)
	a.Run()

	b := New()
	build(b, &hooked)
	calls := 0
	b.SetEmitter(3, func() { calls++ })
	b.Run()

	if len(plain) != len(hooked) {
		t.Fatalf("drain lengths differ: %d vs %d", len(plain), len(hooked))
	}
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Fatalf("timeline diverged at %d: %v vs %v", i, plain[i], hooked[i])
		}
	}
	if calls == 0 {
		t.Fatal("emitter never consulted")
	}
	if a.Now() != b.Now() || a.Processed() != b.Processed() {
		t.Fatalf("final state differs: now %v/%v processed %d/%d",
			a.Now(), b.Now(), a.Processed(), b.Processed())
	}
}

// TestEmitterRunUntil checks the emitter also fires inside RunUntil drains
// and that ClearEmitter detaches it.
func TestEmitterRunUntil(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {})
	}
	emits := 0
	e.SetEmitter(2, func() { emits++ })
	e.RunUntil(4) // events 0..4 => 5 processed => emits at 2 and 4
	if emits != 2 {
		t.Fatalf("emits = %d after RunUntil(4), want 2", emits)
	}
	e.ClearEmitter()
	e.RunUntil(100)
	if emits != 2 {
		t.Fatalf("cleared emitter still fired: emits = %d", emits)
	}
}
