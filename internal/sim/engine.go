// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is deliberately small: an Engine owns a binary heap of timed
// events and executes them in (time, insertion-order) order, so two events
// scheduled for the same instant always fire in the order they were
// scheduled. All FlashWalker hardware models (flash planes, channel buses,
// accelerator updaters and guiders, DRAM) are state machines driven by
// Engine callbacks.
//
// Simulated time is an int64 count of nanoseconds. The finest clock in the
// modelled system is the 1 GHz board-level accelerator (1 ns per cycle), so
// nanosecond resolution is exact for every modelled latency.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated time to float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	heap      eventHeap
	now       Time
	seq       uint64
	processed uint64
}

// New returns a fresh Engine at time zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Step executes the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until none remain, returning the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline if it is still earlier. Events scheduled beyond the
// deadline remain pending.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
