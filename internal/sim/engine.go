// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is deliberately small: an Engine owns a 4-ary heap of timed
// events and executes them in (time, insertion-order) order, so two events
// scheduled for the same instant always fire in the order they were
// scheduled. All FlashWalker hardware models (flash planes, channel buses,
// accelerator updaters and guiders, DRAM) are state machines driven by
// Engine events.
//
// Events come in two flavours. Typed events (Schedule / ScheduleAfter) are
// plain value records — a Handler target, a kind tag, and a small integer
// payload — dispatched through the target's HandleEvent; they are the hot
// path and allocate nothing in steady state (heap slots and handler state
// are reused). Closure events (At / After) carry an arbitrary func() and
// remain for cold paths and tests; each costs one closure allocation plus a
// pooled slot.
//
// Simulated time is an int64 count of nanoseconds. The finest clock in the
// modelled system is the 1 GHz board-level accelerator (1 ns per cycle), so
// nanosecond resolution is exact for every modelled latency.
package sim

import "fmt"

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated time to float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Handler receives typed events at their scheduled time. Implementations
// dispatch on Event.Kind; kind values are private to each Handler, so
// independent subsystems (the accelerator engine, the SSD) never collide.
type Handler interface {
	HandleEvent(ev Event)
}

// Event is a typed event record: a target, a kind tag the target dispatches
// on, and a small integer payload whose meaning the (target, kind) pair
// defines. Events are plain values — scheduling one never allocates.
//
// The zero Event (nil Target) is the "no completion" sentinel accepted by
// APIs with optional completions; Schedule rejects it.
type Event struct {
	Target Handler
	C      int64
	A, B   int32
	Kind   uint16
}

// None reports whether the event is the zero "no completion" sentinel.
func (ev Event) None() bool { return ev.Target == nil }

// entry is one pending heap slot.
type entry struct {
	at  Time
	seq uint64
	ev  Event
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	heap      []entry
	now       Time
	seq       uint64
	processed uint64

	// funcs holds pending closures for At/After events; slots are free-listed
	// so a draining schedule reuses them. The engine itself is the Handler
	// for these (kindFunc is the only kind it handles).
	funcs   []func()
	freeFns []int32

	// Cooperative checkpoint hook (SetCheckpoint): checkFn is consulted
	// every checkEvery processed events, strictly between events; returning
	// false halts the drain loop. The hook never touches the clock or the
	// heap, so an uncanceled run's timeline is bit-identical with or without
	// a hook installed.
	checkEvery uint64
	checkFn    func() bool
	halted     bool
}

// kindFunc tags the engine-internal closure events created by At/After.
const kindFunc uint16 = 0

// New returns a fresh Engine at time zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule enqueues a typed event at absolute time t. Scheduling in the past
// panics: it always indicates a modelling bug. The nil-target sentinel also
// panics — callers must filter optional completions themselves.
func (e *Engine) Schedule(t Time, ev Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if ev.Target == nil {
		panic("sim: scheduling event with nil target")
	}
	e.seq++
	e.push(entry{at: t, seq: e.seq, ev: ev})
}

// ScheduleAfter enqueues a typed event d nanoseconds from now.
func (e *Engine) ScheduleAfter(d Time, ev Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: scheduling nil func")
	}
	e.Schedule(t, Event{Target: e, Kind: kindFunc, A: e.putFunc(fn)})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// putFunc parks a closure in a pooled slot and returns its index.
func (e *Engine) putFunc(fn func()) int32 {
	if n := len(e.freeFns); n > 0 {
		slot := e.freeFns[n-1]
		e.freeFns = e.freeFns[:n-1]
		e.funcs[slot] = fn
		return slot
	}
	e.funcs = append(e.funcs, fn)
	return int32(len(e.funcs) - 1)
}

// HandleEvent dispatches the engine's own closure events. It is exported
// only to satisfy Handler; external code never targets the engine.
func (e *Engine) HandleEvent(ev Event) {
	if ev.Kind != kindFunc {
		panic(fmt.Sprintf("sim: engine received unknown event kind %d", ev.Kind))
	}
	fn := e.funcs[ev.A]
	e.funcs[ev.A] = nil
	e.freeFns = append(e.freeFns, ev.A)
	fn()
}

// SetCheckpoint installs a cooperative stop hook: fn is invoked every
// `every` processed events during Run/RunUntil, always at an event boundary
// (never mid-event). Returning false halts the drain loop; the engine's
// clock, heap, and pending events are left exactly as they were, so a
// halted run can be resumed by calling Run again or abandoned with a
// consistent partial state. Passing fn == nil clears the hook.
//
// The hook must not schedule events or otherwise mutate the engine; it is a
// pure observer used for cancellation and progress snapshots. Because it
// only ever runs between events, installing a hook cannot perturb the
// simulated timeline of a run that is not halted.
func (e *Engine) SetCheckpoint(every uint64, fn func() bool) {
	if fn != nil && every == 0 {
		panic("sim: checkpoint interval must be positive")
	}
	e.checkEvery = every
	e.checkFn = fn
}

// ClearCheckpoint removes any installed checkpoint hook.
func (e *Engine) ClearCheckpoint() { e.checkFn = nil; e.checkEvery = 0 }

// Halted reports whether the last Run/RunUntil was stopped by the
// checkpoint hook rather than by draining the schedule or reaching the
// deadline.
func (e *Engine) Halted() bool { return e.halted }

// checkpoint consults the hook if one is due; it reports true when the
// drain loop must halt.
func (e *Engine) checkpoint() bool {
	if e.checkFn == nil || e.processed%e.checkEvery != 0 {
		return false
	}
	if e.checkFn() {
		return false
	}
	e.halted = true
	return true
}

// Step executes the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ent := e.pop()
	e.now = ent.at
	e.processed++
	ent.ev.Target.HandleEvent(ent.ev)
	return true
}

// Run executes events until none remain (or the checkpoint hook halts the
// drain), returning the final time.
func (e *Engine) Run() Time {
	e.halted = false
	for e.Step() {
		if e.checkpoint() {
			break
		}
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline if it is still earlier. Events scheduled beyond the
// deadline remain pending. A checkpoint halt leaves the clock where the
// last event put it (the deadline advance is skipped).
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
		if e.checkpoint() {
			return e.now
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// --- 4-ary min-heap on (at, seq). ---
//
// A 4-ary layout halves the tree depth of a binary heap, and the entries
// are compared inline on two integer fields, so a push/pop touches fewer
// cache lines and performs no interface calls (the container/heap version
// boxed every entry through interface{} — one allocation per event). The
// (at, seq) key is a strict total order, so the drain sequence is identical
// to any other min-heap over the same schedule.

// less orders heap entries by (at, seq).
func less(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends the entry and sifts it up. The backing array is retained
// across drains, so a steady-state schedule allocates only on high-water
// growth.
func (e *Engine) push(ent entry) {
	h := append(e.heap, ent)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !less(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// pop removes and returns the minimum entry.
func (e *Engine) pop() entry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = entry{} // drop the closure slot reference for GC
	h = h[:n]
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(&h[c], &h[best]) {
				best = c
			}
		}
		if !less(&h[best], &h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	e.heap = h
	return top
}
