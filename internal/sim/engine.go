// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is deliberately small: an Engine owns a timing-wheel scheduler
// and executes events in (time, insertion-order) order, so two events
// scheduled for the same instant always fire in the order they were
// scheduled. All FlashWalker hardware models (flash planes, channel buses,
// accelerator updaters and guiders, DRAM) are state machines driven by
// Engine events.
//
// A figure-scale run keeps tens of thousands of events pending (one per
// in-flight walk) at roughly one event per simulated nanosecond, which makes
// a comparison-based heap the simulator's cache bottleneck: every push and
// pop walks ~8 random cache lines of an L3-sized node array. The scheduler
// is therefore a timing wheel — one FIFO bucket per nanosecond over a
// 131 us horizon, a two-level bitmap to find the next occupied bucket in a
// few word scans, and a small 4-ary overflow heap for the rare event beyond
// the horizon (erase latencies, fault timers). Inserts and pops are O(1)
// with ~3 cache-line touches; the drain order is the exact (time, sequence)
// total order the heap produced, so timelines are bit-identical.
//
// Events come in two flavours. Typed events (Schedule / ScheduleAfter) are
// plain value records — a Handler target, a kind tag, and a small integer
// payload — dispatched through the target's HandleEvent; they are the hot
// path and allocate nothing in steady state (heap slots and handler state
// are reused). Closure events (At / After) carry an arbitrary func() and
// remain for cold paths and tests; each costs one closure allocation plus a
// pooled slot.
//
// Simulated time is an int64 count of nanoseconds. The finest clock in the
// modelled system is the 1 GHz board-level accelerator (1 ns per cycle), so
// nanosecond resolution is exact for every modelled latency.
package sim

import (
	"fmt"
	"math/bits"
)

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated time to float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Handler receives typed events at their scheduled time. Implementations
// dispatch on Event.Kind; kind values are private to each Handler, so
// independent subsystems (the accelerator engine, the SSD) never collide.
type Handler interface {
	HandleEvent(ev Event)
}

// Event is a typed event record: a target, a kind tag the target dispatches
// on, and a small integer payload whose meaning the (target, kind) pair
// defines. Events are plain values — scheduling one never allocates.
//
// The zero Event (nil Target) is the "no completion" sentinel accepted by
// APIs with optional completions; Schedule rejects it.
type Event struct {
	Target Handler
	C      int64
	A, B   int32
	Kind   uint16
}

// None reports whether the event is the zero "no completion" sentinel.
func (ev Event) None() bool { return ev.Target == nil }

// Timing-wheel geometry: one bucket per nanosecond over a ~1 ms horizon.
// The horizon covers every steady-state device latency (sense, transfer,
// accelerator compute) including completions booked behind deep queue
// backlogs — measured at figure scale, >99.9% of scheduled deltas fall
// under 1 ms, so essentially only erase-class operations and fault timers
// overflow to the heap, and each overflowed event is migrated into the
// wheel at most once. The wheel array is 8 MiB but allocated lazily and
// touched sparsely: resident pages track the span of in-flight deltas, not
// the horizon.
const (
	wheelBits = 20
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
	l1Words   = wheelSize / 64 // one occupancy bit per bucket
	l2Words   = l1Words / 64   // one summary bit per l1 word
)

// slot is one wheel bucket: a FIFO list threaded through the slab by
// slabEntry.next. Refs are stored +1 so the zero value means "empty" and a
// freshly made wheel needs no initialization pass.
type slot struct{ head, tail int32 }

// slabEntry is one pending event plus its scheduling key and FIFO link.
// The struct is 64 bytes, so a pop touches exactly one cache line of slab.
type slabEntry struct {
	ev   Event
	at   Time
	seq  uint64
	next int32 // ref+1 of the next entry in the same bucket, 0 = end
}

// node is one overflow-heap entry: the (at, seq) ordering key plus a
// reference into the event slab.
type node struct {
	at  Time
	seq uint64
	ref int32
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	wheel     []slot   // lazily allocated bucket array, wheelSize long
	bmL1      []uint64 // bucket-occupancy bitmap
	bmL2      []uint64 // summary bitmap over bmL1 words
	wheelN    int      // events currently in the wheel
	overflow  []node   // 4-ary min-heap of events at or beyond now+wheelSize
	slab      []slabEntry
	freeSlab  []int32 // recycled slab slots
	now       Time
	seq       uint64
	processed uint64

	// funcs holds pending closures for At/After events; slots are free-listed
	// so a draining schedule reuses them. The engine itself is the Handler
	// for these (kindFunc is the only kind it handles).
	funcs   []func()
	freeFns []int32

	// Cooperative checkpoint hook (SetCheckpoint): checkFn is consulted
	// every checkEvery processed events, strictly between events; returning
	// false halts the drain loop. The hook never touches the clock or the
	// heap, so an uncanceled run's timeline is bit-identical with or without
	// a hook installed.
	checkEvery uint64
	checkFn    func() bool
	halted     bool

	// Emission hook (SetEmitter): like the checkpoint hook, a pure observer
	// consulted every emitEvery processed events strictly between events,
	// but it can never halt the drain. Used to flush batched observations
	// (e.g. completed-walk records) out of the hot loop on a cadence
	// independent of the checkpoint interval.
	emitEvery uint64
	emitFn    func()

	// Applier hook (SetApplier): consulted before every event executes,
	// with that event's timestamp, strictly between events. Unlike the
	// observer hooks it may mutate model state outside the engine (graph
	// indexes, filters) — that is its purpose — but it must never touch the
	// engine itself. Used to apply timestamped graph mutations exactly
	// before the first event at or after each mutation's time.
	applyFn func(next Time)
}

// kindFunc tags the engine-internal closure events created by At/After.
const kindFunc uint16 = 0

// New returns a fresh Engine at time zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return e.wheelN + len(e.overflow) }

// Schedule enqueues a typed event at absolute time t. Scheduling in the past
// panics: it always indicates a modelling bug. The nil-target sentinel also
// panics — callers must filter optional completions themselves.
func (e *Engine) Schedule(t Time, ev Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if ev.Target == nil {
		panic("sim: scheduling event with nil target")
	}
	e.seq++
	e.insert(t, e.seq, ev)
}

// insert parks the event in the slab and files its reference under the
// wheel bucket for t, or in the overflow heap when t is beyond the horizon.
// Callers must pass strictly increasing seq values for correct FIFO order
// within a bucket (ImportState sorts for exactly this reason).
func (e *Engine) insert(t Time, seq uint64, ev Event) {
	if e.wheel == nil {
		e.wheel = make([]slot, wheelSize)
		e.bmL1 = make([]uint64, l1Words)
		e.bmL2 = make([]uint64, l2Words)
	}
	ref := e.putEvent(t, seq, ev)
	if t < e.now+wheelSize {
		e.bucketAppend(ref, t)
		return
	}
	e.heapPush(node{at: t, seq: seq, ref: ref})
}

// bucketAppend files a slab reference at the tail of its wheel bucket.
// Within a bucket the list is FIFO, which is (at, seq) order: every entry
// in a bucket shares one timestamp (two live timestamps wheelSize apart
// cannot both be inside the horizon), and appends arrive in seq order.
func (e *Engine) bucketAppend(ref int32, t Time) {
	idx := int(t & wheelMask)
	s := &e.wheel[idx]
	if s.head == 0 {
		s.head = ref + 1
		e.bmL1[idx>>6] |= 1 << (idx & 63)
		e.bmL2[idx>>12] |= 1 << ((idx >> 6) & 63)
	} else {
		e.slab[s.tail-1].next = ref + 1
	}
	s.tail = ref + 1
	e.wheelN++
}

// putEvent parks an event in a pooled slab slot and returns its index.
func (e *Engine) putEvent(t Time, seq uint64, ev Event) int32 {
	if n := len(e.freeSlab); n > 0 {
		ref := e.freeSlab[n-1]
		e.freeSlab = e.freeSlab[:n-1]
		e.slab[ref] = slabEntry{ev: ev, at: t, seq: seq}
		return ref
	}
	e.slab = append(e.slab, slabEntry{ev: ev, at: t, seq: seq})
	return int32(len(e.slab) - 1)
}

// takeEvent releases a slab slot, returning its event. The slot is zeroed
// so a popped closure-event reference does not pin the Handler for GC.
func (e *Engine) takeEvent(ref int32) Event {
	ev := e.slab[ref].ev
	e.slab[ref] = slabEntry{}
	e.freeSlab = append(e.freeSlab, ref)
	return ev
}

// ScheduleAfter enqueues a typed event d nanoseconds from now.
func (e *Engine) ScheduleAfter(d Time, ev Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: scheduling nil func")
	}
	e.Schedule(t, Event{Target: e, Kind: kindFunc, A: e.putFunc(fn)})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// putFunc parks a closure in a pooled slot and returns its index.
func (e *Engine) putFunc(fn func()) int32 {
	if n := len(e.freeFns); n > 0 {
		slot := e.freeFns[n-1]
		e.freeFns = e.freeFns[:n-1]
		e.funcs[slot] = fn
		return slot
	}
	e.funcs = append(e.funcs, fn)
	return int32(len(e.funcs) - 1)
}

// HandleEvent dispatches the engine's own closure events. It is exported
// only to satisfy Handler; external code never targets the engine.
func (e *Engine) HandleEvent(ev Event) {
	if ev.Kind != kindFunc {
		panic(fmt.Sprintf("sim: engine received unknown event kind %d", ev.Kind))
	}
	fn := e.funcs[ev.A]
	e.funcs[ev.A] = nil
	e.freeFns = append(e.freeFns, ev.A)
	fn()
}

// SetCheckpoint installs a cooperative stop hook: fn is invoked every
// `every` processed events during Run/RunUntil, always at an event boundary
// (never mid-event). Returning false halts the drain loop; the engine's
// clock, heap, and pending events are left exactly as they were, so a
// halted run can be resumed by calling Run again or abandoned with a
// consistent partial state. Passing fn == nil clears the hook.
//
// The hook must not schedule events or otherwise mutate the engine; it is a
// pure observer used for cancellation and progress snapshots. Because it
// only ever runs between events, installing a hook cannot perturb the
// simulated timeline of a run that is not halted.
func (e *Engine) SetCheckpoint(every uint64, fn func() bool) {
	if fn != nil && every == 0 {
		panic("sim: checkpoint interval must be positive")
	}
	e.checkEvery = every
	e.checkFn = fn
}

// ClearCheckpoint removes any installed checkpoint hook.
func (e *Engine) ClearCheckpoint() { e.checkFn = nil; e.checkEvery = 0 }

// SetEmitter installs a cooperative emission hook: fn is invoked every
// `every` processed events during Run/RunUntil, always at an event boundary
// (never mid-event), immediately before the checkpoint hook when both are
// due. Unlike the checkpoint hook it has no return value and can never halt
// the drain. Passing fn == nil clears the hook.
//
// Like the checkpoint hook, the emitter must not schedule events or
// otherwise mutate the engine; it is a pure observer, so installing one
// cannot perturb the simulated timeline. It exists so periodic export work
// (draining completed-walk buffers to a consumer) gets its own cadence
// instead of piggybacking on the checkpoint interval.
func (e *Engine) SetEmitter(every uint64, fn func()) {
	if fn != nil && every == 0 {
		panic("sim: emitter interval must be positive")
	}
	e.emitEvery = every
	e.emitFn = fn
}

// ClearEmitter removes any installed emission hook.
func (e *Engine) ClearEmitter() { e.emitFn = nil; e.emitEvery = 0 }

// SetApplier installs a pre-event hook: during Run/RunUntil, fn is invoked
// immediately before each event executes, with that event's timestamp —
// never mid-event. This gives external timestamped state changes (graph
// mutations) an exact visibility rule: a change stamped T is applied before
// the first event at time >= T and is invisible to every event before it.
// Passing fn == nil clears the hook.
//
// fn may mutate model state outside the engine, but it must not schedule
// events, advance the clock, or otherwise touch the engine: the drain order
// is decided before fn runs, so a hook that never changes external state is
// indistinguishable from no hook at all — timelines stay bit-identical.
func (e *Engine) SetApplier(fn func(next Time)) { e.applyFn = fn }

// ClearApplier removes any installed applier hook.
func (e *Engine) ClearApplier() { e.applyFn = nil }

// emit consults the emission hook if one is due.
func (e *Engine) emit() {
	if e.emitFn != nil && e.processed%e.emitEvery == 0 {
		e.emitFn()
	}
}

// Halted reports whether the last Run/RunUntil was stopped by the
// checkpoint hook rather than by draining the schedule or reaching the
// deadline.
func (e *Engine) Halted() bool { return e.halted }

// checkpoint consults the hook if one is due; it reports true when the
// drain loop must halt.
func (e *Engine) checkpoint() bool {
	if e.checkFn == nil || e.processed%e.checkEvery != 0 {
		return false
	}
	if e.checkFn() {
		return false
	}
	e.halted = true
	return true
}

// Step executes the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	if e.wheelN == 0 && len(e.overflow) == 0 {
		return false
	}
	ev := e.pop()
	e.processed++
	ev.Target.HandleEvent(ev)
	return true
}

// Run executes events until none remain (or the checkpoint hook halts the
// drain), returning the final time.
func (e *Engine) Run() Time {
	e.halted = false
	for {
		if e.applyFn != nil && e.Pending() > 0 {
			e.applyFn(e.nextTime())
		}
		if !e.Step() {
			break
		}
		e.emit()
		if e.checkpoint() {
			break
		}
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline if it is still earlier. Events scheduled beyond the
// deadline remain pending. A checkpoint halt leaves the clock where the
// last event put it (the deadline advance is skipped).
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for e.Pending() > 0 {
		next := e.nextTime()
		if next > deadline {
			break
		}
		if e.applyFn != nil {
			e.applyFn(next)
		}
		e.Step()
		e.emit()
		if e.checkpoint() {
			return e.now
		}
	}
	if e.now < deadline {
		e.now = deadline
		e.migrate()
	}
	return e.now
}

// nextTime reports the timestamp of the earliest pending event. It must
// only be called with events pending. When the wheel is non-empty its
// earliest bucket beats the overflow heap by construction (everything in
// the wheel is inside the horizon, everything overflowed is beyond it).
func (e *Engine) nextTime() Time {
	if e.wheelN > 0 {
		s := &e.wheel[e.nextBucket()]
		return e.slab[s.head-1].at
	}
	return e.overflow[0].at
}

// --- Timing wheel + overflow heap. ---
//
// Correctness argument for the exact (at, seq) drain order:
//
//   - Every entry inside a bucket shares one timestamp: two live
//     timestamps that map to the same bucket differ by a multiple of
//     wheelSize, and all wheel entries sit inside the [now, now+wheelSize)
//     horizon, so they cannot coexist.
//   - Within a bucket the FIFO list is seq order. Direct inserts append in
//     increasing seq. A migrated (previously overflowed) entry always
//     carries a smaller seq than any direct insert to the same bucket: a
//     direct insert at time T requires T < now+wheelSize, the overflowed
//     entry was scheduled while T >= now+wheelSize, and now only advances —
//     so the overflow insert happened strictly earlier. Migration runs the
//     moment now advances, before any handler can insert, so migrated
//     entries always land at the head of an empty bucket, in heap (seq)
//     order.
//   - Scanning buckets circularly from now&wheelMask visits timestamps in
//     increasing order, and the overflow heap's minimum is always beyond
//     every wheel entry.

// pop removes the earliest pending event, advances the clock to its
// timestamp, and migrates any overflowed events that the advance pulled
// inside the horizon.
func (e *Engine) pop() Event {
	if e.wheelN > 0 {
		idx := e.nextBucket()
		s := &e.wheel[idx]
		ref := s.head - 1
		ent := &e.slab[ref]
		s.head = ent.next
		if s.head == 0 {
			s.tail = 0
			w := idx >> 6
			e.bmL1[w] &^= 1 << (idx & 63)
			if e.bmL1[w] == 0 {
				e.bmL2[w>>6] &^= 1 << (w & 63)
			}
		}
		e.wheelN--
		if ent.at != e.now {
			e.now = ent.at
			e.migrate()
		}
		return e.takeEvent(ref)
	}
	// Wheel empty: the schedule has only far-future events. Pop the
	// overflow minimum directly and pull its same-horizon peers in.
	nd := e.heapPop()
	e.now = nd.at
	e.migrate()
	return e.takeEvent(nd.ref)
}

// migrate moves overflowed events that the latest clock advance brought
// inside the horizon into their wheel buckets. The heap pops in (at, seq)
// order, so per-bucket arrival order stays seq order.
func (e *Engine) migrate() {
	horizon := e.now + wheelSize
	for len(e.overflow) > 0 && e.overflow[0].at < horizon {
		nd := e.heapPop()
		e.bucketAppend(nd.ref, nd.at)
	}
}

// nextBucket reports the index of the earliest occupied bucket, scanning
// the two-level occupancy bitmap circularly from the bucket of now. It must
// only be called when the wheel is non-empty.
func (e *Engine) nextBucket() int {
	start := int(e.now & wheelMask)
	// Bits at or after start inside start's own l1 word.
	w := start >> 6
	if m := e.bmL1[w] &^ (1<<(start&63) - 1); m != 0 {
		return w<<6 | bits.TrailingZeros64(m)
	}
	// L1 words strictly after w inside start's l2 word.
	w2 := w >> 6
	if m := e.bmL2[w2] &^ (1<<((w&63)+1) - 1); m != 0 {
		lw := w2<<6 | bits.TrailingZeros64(m)
		return lw<<6 | bits.TrailingZeros64(e.bmL1[lw])
	}
	// Remaining l2 words, wrapping. The final iteration revisits w2: any
	// bit still set there is before start, i.e. wrapped, and therefore
	// later in time than every bucket at or after start (all checked
	// empty above), so taking its lowest bucket is correct.
	for i := 1; i <= l2Words; i++ {
		w2n := (w2 + i) & (l2Words - 1)
		if m := e.bmL2[w2n]; m != 0 {
			lw := w2n<<6 | bits.TrailingZeros64(m)
			return lw<<6 | bits.TrailingZeros64(e.bmL1[lw])
		}
	}
	panic("sim: nextBucket on empty wheel")
}

// --- 4-ary min-heap on (at, seq) for beyond-horizon events. ---
//
// A 4-ary layout halves the tree depth of a binary heap, and the nodes
// are compared inline on two integer fields, so a push/pop touches fewer
// cache lines and performs no interface calls. The (at, seq) key is a
// strict total order — seq is unique per event — so the drain sequence is
// identical to any other min-heap over the same schedule.

// less orders heap nodes by (at, seq).
func less(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends the node and sifts it up, moving the displaced ancestors
// down into the hole rather than swapping (one write per level instead of
// two). The backing array is retained across drains, so a steady-state
// schedule allocates only on high-water growth.
func (e *Engine) heapPush(nd node) {
	h := append(e.overflow, nd)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !less(&nd, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = nd
	e.overflow = h
}

// heapPop removes and returns the minimum node.
func (e *Engine) heapPop() node {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	moved := h[n]
	h = h[:n]
	e.overflow = h
	if n > 0 {
		// Sift the displaced last node down from the root hole.
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			best := first
			last := first + 4
			if last > n {
				last = n
			}
			for c := first + 1; c < last; c++ {
				if less(&h[c], &h[best]) {
					best = c
				}
			}
			if !less(&h[best], &moved) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = moved
	}
	return top
}
