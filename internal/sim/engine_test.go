package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("new engine Now = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine Pending = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final Now = %v, want 30", e.Now())
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEventsScheduledDuringExecution(t *testing.T) {
	e := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 10 {
			e.After(7, chain)
		}
	}
	e.After(0, chain)
	e.Run()
	if count != 10 {
		t.Fatalf("chain executed %d times, want 10", count)
	}
	if e.Now() != 9*7 {
		t.Fatalf("final time %v, want 63", e.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New()
	fired := map[Time]bool{}
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired[at] = true })
	}
	e.RunUntil(25)
	if !fired[10] || !fired[20] {
		t.Error("events before deadline did not fire")
	}
	if fired[30] || fired[40] {
		t.Error("events after deadline fired early")
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25 after RunUntil(25)", e.Now())
	}
	e.Run()
	if !fired[30] || !fired[40] {
		t.Error("remaining events lost after RunUntil")
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now = %v, want 1000", e.Now())
	}
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 25; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Processed() != 25 {
		t.Fatalf("Processed = %d, want 25", e.Processed())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

// Property: for any set of non-negative delays, events fire in sorted order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var fired []Time
		for _, d := range delays {
			d := Time(d)
			e.At(d, func() { fired = append(fired, d) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i-1] > fired[i] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{5, "5ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if s := (2500 * Millisecond).Seconds(); s != 2.5 {
		t.Fatalf("Seconds = %v, want 2.5", s)
	}
}
