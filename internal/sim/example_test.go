package sim_test

import (
	"fmt"

	"flashwalker/internal/sim"
)

// Schedule events and run them in time order.
func ExampleEngine() {
	e := sim.New()
	e.At(20, func() { fmt.Println("second at", e.Now()) })
	e.At(10, func() { fmt.Println("first at", e.Now()) })
	e.Run()
	// Output:
	// first at 10ns
	// second at 20ns
}

// A Queue serializes contended requests like a bus.
func ExampleQueue() {
	e := sim.New()
	bus := sim.NewQueue(e)
	bus.Acquire(100, func() { fmt.Println("transfer 1 done at", e.Now()) })
	bus.Acquire(100, func() { fmt.Println("transfer 2 done at", e.Now()) })
	e.Run()
	// Output:
	// transfer 1 done at 100ns
	// transfer 2 done at 200ns
}
