package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// recorder is a Handler that logs (now, A) pairs as events fire.
type recorder struct {
	eng   *Engine
	times []Time
	ids   []int32
}

func (r *recorder) HandleEvent(ev Event) {
	r.times = append(r.times, r.eng.Now())
	r.ids = append(r.ids, ev.A)
}

// checkDrainOrder schedules the given times as typed events and verifies the
// drain respects (time, insertion-order): timestamps non-decreasing, and
// among equal timestamps the insertion ids ascending. It also cross-checks
// against a stable sort of the schedule — the reference the old
// container/heap kernel implemented.
func checkDrainOrder(t *testing.T, times []Time) {
	t.Helper()
	e := New()
	r := &recorder{eng: e}
	for i, at := range times {
		e.Schedule(at, Event{Target: r, A: int32(i)})
	}
	e.Run()
	if len(r.times) != len(times) {
		t.Fatalf("drained %d events, scheduled %d", len(r.times), len(times))
	}
	ref := make([]int, len(times))
	for i := range ref {
		ref[i] = i
	}
	sort.SliceStable(ref, func(a, b int) bool { return times[ref[a]] < times[ref[b]] })
	for i := range ref {
		if got, want := r.ids[i], int32(ref[i]); got != want {
			t.Fatalf("drain position %d: got event %d (t=%d), want event %d (t=%d)",
				i, got, times[got], want, times[want])
		}
		if i > 0 && r.times[i] < r.times[i-1] {
			t.Fatalf("time went backwards at position %d: %d after %d", i, r.times[i], r.times[i-1])
		}
	}
}

// TestHeapDrainOrderRandom drives the 4-ary heap with random schedules of
// varying sizes and duplicate-heavy time distributions.
func TestHeapDrainOrderRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 17, 64, 257, 4096} {
		for _, span := range []int64{1, 3, 10, 1 << 30} {
			times := make([]Time, n)
			for i := range times {
				times[i] = Time(rng.Int63n(span))
			}
			checkDrainOrder(t, times)
		}
	}
}

// TestHeapInterleavedScheduling schedules new events from inside handlers
// (the simulation's actual usage pattern) and checks monotonic time.
func TestHeapInterleavedScheduling(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(11))
	var fired int
	var last Time
	var h Handler
	h = handlerFunc(func(ev Event) {
		if e.Now() < last {
			t.Fatalf("time went backwards: %v after %v", e.Now(), last)
		}
		last = e.Now()
		fired++
		if ev.B > 0 {
			// Re-arm with a random non-negative delay, including 0 (same
			// instant: must fire after everything already scheduled then).
			e.ScheduleAfter(Time(rng.Int63n(5)), Event{Target: h, B: ev.B - 1})
		}
	})
	for i := 0; i < 32; i++ {
		e.Schedule(Time(rng.Int63n(100)), Event{Target: h, B: 8})
	}
	e.Run()
	if want := 32 * 9; fired != want {
		t.Fatalf("fired %d events, want %d", fired, want)
	}
}

type handlerFunc func(Event)

func (f handlerFunc) HandleEvent(ev Event) { f(ev) }

// FuzzHeapDrainOrder fuzzes the (time, seq) drain invariant with arbitrary
// byte-derived schedules.
func FuzzHeapDrainOrder(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 0, 5})
	f.Add([]byte{255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 1<<12 {
			t.Skip()
		}
		times := make([]Time, len(data))
		for i, b := range data {
			times[i] = Time(b % 17) // heavy duplication stresses tie-breaks
		}
		checkDrainOrder(t, times)
	})
}

// TestTypedEventPayload checks the payload fields round-trip.
func TestTypedEventPayload(t *testing.T) {
	e := New()
	var got Event
	h := handlerFunc(func(ev Event) { got = ev })
	e.Schedule(5, Event{Target: h, Kind: 9, A: -3, B: 4, C: 1 << 40})
	e.Run()
	if got.Kind != 9 || got.A != -3 || got.B != 4 || got.C != 1<<40 {
		t.Fatalf("payload corrupted: %+v", got)
	}
}

// TestScheduleNilTargetPanics pins the nil-target guard.
func TestScheduleNilTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil target")
		}
	}()
	New().Schedule(0, Event{})
}

// TestMixedTypedAndClosureOrder interleaves At closures with typed events at
// the same instant: insertion order must win regardless of flavour.
func TestMixedTypedAndClosureOrder(t *testing.T) {
	e := New()
	var order []int
	h := handlerFunc(func(ev Event) { order = append(order, int(ev.A)) })
	e.Schedule(10, Event{Target: h, A: 0})
	e.At(10, func() { order = append(order, 1) })
	e.Schedule(10, Event{Target: h, A: 2})
	e.At(10, func() { order = append(order, 3) })
	e.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("mixed-order drain = %v", order)
		}
	}
}

// TestTypedSchedulingAllocFree guards the tentpole invariant: scheduling and
// draining typed events through a warm heap performs zero allocations.
func TestTypedSchedulingAllocFree(t *testing.T) {
	e := New()
	h := handlerFunc(func(ev Event) {})
	// Warm the heap's backing array.
	for i := 0; i < 64; i++ {
		e.ScheduleAfter(Time(i%7), Event{Target: h})
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleAfter(3, Event{Target: h})
		e.ScheduleAfter(1, Event{Target: h})
		e.ScheduleAfter(2, Event{Target: h})
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("typed schedule/drain allocated %.1f times per run, want 0", allocs)
	}
}

// TestQueueAcquireEventAllocFree guards the typed queue path.
func TestQueueAcquireEventAllocFree(t *testing.T) {
	e := New()
	q := NewQueue(e)
	h := handlerFunc(func(ev Event) {})
	q.AcquireEvent(5, Event{Target: h})
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		q.AcquireEvent(5, Event{Target: h})
		q.AcquireAfterEvent(e.Now()+2, 3, Event{Target: h})
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("typed queue acquire allocated %.1f times per run, want 0", allocs)
	}
}
