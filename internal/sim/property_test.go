package sim

import (
	"testing"

	"flashwalker/internal/rng"
)

// Property-based invariant tests: for randomized seeds and fault-like
// perturbation rates, the event kernel must keep its contract — simulated
// time is monotone across the heap, every scheduled completion fires exactly
// once, and queues drain back to idle. These are the kernel-level guarantees
// the fault-injection layer builds on (a retry is just one more scheduled
// event; if any of these broke under dense schedules, faulty runs could
// lose or duplicate walks).

// propertyIters scales the randomized sweep; short mode keeps tier-1 fast.
func propertyIters(t *testing.T) int {
	if testing.Short() {
		return 3
	}
	return 12
}

// TestPropertyTimeMonotoneAndExactlyOnce schedules a random burst of events
// — including ties, zero delays, and chained reschedules standing in for
// retries — and asserts the observed clock never moves backwards and every
// event fires exactly once.
func TestPropertyTimeMonotoneAndExactlyOnce(t *testing.T) {
	for iter := 0; iter < propertyIters(t); iter++ {
		r := rng.New(uint64(1000 + iter))
		eng := New()
		faultRate := float64(iter) / 20 // 0 .. 0.55

		n := 50 + int(r.Uint64n(200))
		fired := make([]int, n)
		last := Time(-1)
		for i := 0; i < n; i++ {
			i := i
			delay := Time(r.Uint64n(1000)) * Microsecond
			retries := 0
			var handler func()
			handler = func() {
				if eng.Now() < last {
					t.Fatalf("iter %d: clock moved backwards: %v after %v", iter, eng.Now(), last)
				}
				last = eng.Now()
				// A "transient fault": reschedule the same completion with
				// backoff, a bounded number of times.
				if retries < 3 && r.Bool(faultRate) {
					retries++
					eng.After(Time(retries)*10*Microsecond, handler)
					return
				}
				fired[i]++
			}
			eng.After(delay, handler)
		}
		eng.Run()
		if eng.Pending() != 0 {
			t.Fatalf("iter %d: %d events left after Run", iter, eng.Pending())
		}
		for i, f := range fired {
			if f != 1 {
				t.Fatalf("iter %d: event %d fired %d times, want exactly once", iter, i, f)
			}
		}
	}
}

// TestPropertyQueuesDrain drives a random set of single-server queues with
// random arrival/service patterns (plus fault-like AcquireAfter backoff
// re-entries) and asserts every submission completes, the queues return to
// idle at drain, and utilization stays in [0, 1].
func TestPropertyQueuesDrain(t *testing.T) {
	for iter := 0; iter < propertyIters(t); iter++ {
		r := rng.New(uint64(5000 + iter))
		eng := New()
		nq := 1 + int(r.Uint64n(4))
		queues := make([]*Queue, nq)
		for i := range queues {
			queues[i] = NewQueue(eng)
		}
		faultRate := float64(iter) / 24

		submitted, completed := 0, 0
		var submit func(q *Queue, depth int)
		submit = func(q *Queue, depth int) {
			submitted++
			service := Time(1+r.Uint64n(50)) * Microsecond
			done := func() {
				completed++
				// With probability faultRate the work "fails" and re-enters
				// the same queue after a backoff — the retry pattern the
				// flash layer uses. Bounded depth keeps the run finite.
				if depth < 3 && r.Bool(faultRate) {
					backoff := eng.Now() + Time(1+r.Uint64n(20))*Microsecond
					submitted++
					q.AcquireAfter(backoff, service, func() { completed++ })
				}
			}
			if r.Bool(0.5) {
				q.Acquire(service, done)
			} else {
				q.AcquireAfter(eng.Now()+Time(r.Uint64n(100))*Microsecond, service, done)
			}
		}
		n := 30 + int(r.Uint64n(120))
		for i := 0; i < n; i++ {
			q := queues[r.Uint64n(uint64(nq))]
			eng.After(Time(r.Uint64n(500))*Microsecond, func() { submit(q, 0) })
		}
		end := eng.Run()
		if completed != submitted {
			t.Fatalf("iter %d: %d of %d submissions completed", iter, completed, submitted)
		}
		for qi, q := range queues {
			if q.BusyUntil() > end {
				t.Fatalf("iter %d: queue %d still busy (%v) after drain at %v",
					iter, qi, q.BusyUntil(), end)
			}
			if u := q.Utilization(); u < 0 || u > 1 {
				t.Fatalf("iter %d: queue %d utilization %v outside [0,1]", iter, qi, u)
			}
			if int(q.Served()) > submitted {
				t.Fatalf("iter %d: queue %d served %d > %d submitted", iter, qi, q.Served(), submitted)
			}
		}
	}
}

// TestPropertyHeapOrderWithTies floods the heap with same-timestamp events
// and asserts FIFO order among ties (the seq tiebreak): determinism under
// fault-injected schedules depends on it.
func TestPropertyHeapOrderWithTies(t *testing.T) {
	for iter := 0; iter < propertyIters(t); iter++ {
		r := rng.New(uint64(9000 + iter))
		eng := New()
		var order []int
		n := 20 + int(r.Uint64n(80))
		at := make([]Time, n)
		for i := 0; i < n; i++ {
			i := i
			// Only a handful of distinct timestamps: most events tie.
			at[i] = Time(r.Uint64n(4)) * Microsecond
			eng.At(at[i], func() { order = append(order, i) })
		}
		eng.Run()
		if len(order) != n {
			t.Fatalf("iter %d: %d of %d events fired", iter, len(order), n)
		}
		seen := make(map[int]bool, n)
		lastIdx := make(map[Time]int)
		for _, id := range order {
			if seen[id] {
				t.Fatalf("iter %d: event %d fired twice", iter, id)
			}
			seen[id] = true
			if prev, ok := lastIdx[at[id]]; ok && prev > id {
				t.Fatalf("iter %d: tie at %v fired out of scheduling order (%d before %d)",
					iter, at[id], prev, id)
			}
			lastIdx[at[id]] = id
		}
	}
}
