package sim

// Queue models a FIFO-serving, single-server resource such as a bus, a DMA
// engine, or a memory port. A request occupies the resource for a caller-
// computed service time; requests issued while the resource is busy queue
// behind it in issue order. This is the standard M/G/1-style abstraction:
// the channel buses, the PCIe link and the mapping-table port are all Queues.
//
// Queue does not keep an explicit waiter list. Because service times are
// known at issue time, it suffices to track the time the server frees up:
// a new request starts at max(now, busyUntil).
type Queue struct {
	eng *Engine

	busyUntil Time
	busyTotal Time // accumulated service time (for utilization)
	served    uint64
	waited    Time // accumulated queueing delay (start - issue)
}

// NewQueue returns a FIFO resource bound to the engine.
func NewQueue(eng *Engine) *Queue { return &Queue{eng: eng} }

// reserve books the resource from readyAt for service nanoseconds and
// returns the completion time.
func (q *Queue) reserve(readyAt, service Time) Time {
	if service < 0 {
		panic("sim: negative service time")
	}
	start := readyAt
	if q.busyUntil > start {
		q.waited += q.busyUntil - start
		start = q.busyUntil
	}
	end := start + service
	q.busyUntil = end
	q.busyTotal += service
	q.served++
	return end
}

// Acquire reserves the resource for service nanoseconds, starting as soon as
// all previously issued requests have drained. It returns the completion
// time and, if done is non-nil, schedules done at that time.
func (q *Queue) Acquire(service Time, done func()) Time {
	end := q.reserve(q.eng.Now(), service)
	if done != nil {
		q.eng.At(end, done)
	}
	return end
}

// AcquireEvent is Acquire with a typed completion event instead of a
// closure; it allocates nothing. The zero event means no completion.
func (q *Queue) AcquireEvent(service Time, done Event) Time {
	end := q.reserve(q.eng.Now(), service)
	if !done.None() {
		q.eng.Schedule(end, done)
	}
	return end
}

// AcquireAfter is Acquire but the request is issued at absolute time
// readyAt >= now (e.g. a transfer that can only start once data is staged).
func (q *Queue) AcquireAfter(readyAt, service Time, done func()) Time {
	if readyAt < q.eng.Now() {
		readyAt = q.eng.Now()
	}
	end := q.reserve(readyAt, service)
	if done != nil {
		q.eng.At(end, done)
	}
	return end
}

// AcquireAfterEvent is AcquireAfter with a typed completion event.
func (q *Queue) AcquireAfterEvent(readyAt, service Time, done Event) Time {
	if readyAt < q.eng.Now() {
		readyAt = q.eng.Now()
	}
	end := q.reserve(readyAt, service)
	if !done.None() {
		q.eng.Schedule(end, done)
	}
	return end
}

// BusyUntil reports when the resource next becomes free.
func (q *Queue) BusyUntil() Time { return q.busyUntil }

// BusyTotal reports accumulated service time.
func (q *Queue) BusyTotal() Time { return q.busyTotal }

// Served reports the number of completed (or scheduled) requests.
func (q *Queue) Served() uint64 { return q.served }

// Waited reports total queueing delay across all requests.
func (q *Queue) Waited() Time { return q.waited }

// Utilization reports busyTotal / elapsed, clamped to [0,1] for elapsed > 0.
func (q *Queue) Utilization() float64 {
	el := q.eng.Now()
	if el <= 0 {
		return 0
	}
	u := float64(q.busyTotal) / float64(el)
	if u > 1 {
		u = 1
	}
	return u
}

// TransferTime returns the time to move n bytes at bytesPerSec, rounded up
// to at least 1 ns for n > 0.
func TransferTime(n int64, bytesPerSec int64) Time {
	if n <= 0 {
		return 0
	}
	if bytesPerSec <= 0 {
		panic("sim: non-positive bandwidth")
	}
	t := Time(n * int64(Second) / bytesPerSec)
	if t == 0 {
		t = 1
	}
	return t
}
