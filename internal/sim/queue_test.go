package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueServesImmediatelyWhenIdle(t *testing.T) {
	e := New()
	q := NewQueue(e)
	end := q.Acquire(100, nil)
	if end != 100 {
		t.Fatalf("idle queue completion = %v, want 100", end)
	}
}

func TestQueueSerializesRequests(t *testing.T) {
	e := New()
	q := NewQueue(e)
	// Three back-to-back requests issued at t=0 must finish at 10, 30, 60.
	ends := []Time{q.Acquire(10, nil), q.Acquire(20, nil), q.Acquire(30, nil)}
	want := []Time{10, 30, 60}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if q.Waited() != 10+30 {
		t.Fatalf("Waited = %v, want 40", q.Waited())
	}
}

func TestQueueCompletionCallbacks(t *testing.T) {
	e := New()
	q := NewQueue(e)
	var done []Time
	q.Acquire(5, func() { done = append(done, e.Now()) })
	q.Acquire(5, func() { done = append(done, e.Now()) })
	e.Run()
	if len(done) != 2 || done[0] != 5 || done[1] != 10 {
		t.Fatalf("callbacks at %v, want [5 10]", done)
	}
}

func TestQueueIdleGapThenNewRequest(t *testing.T) {
	e := New()
	q := NewQueue(e)
	q.Acquire(10, nil)
	e.At(100, func() {
		if end := q.Acquire(10, nil); end != 110 {
			t.Errorf("request after idle gap ends at %v, want 110", end)
		}
	})
	e.Run()
	if q.BusyTotal() != 20 {
		t.Fatalf("BusyTotal = %v, want 20", q.BusyTotal())
	}
}

func TestQueueAcquireAfter(t *testing.T) {
	e := New()
	q := NewQueue(e)
	// Data staged at t=50; the bus is free, so service runs 50..70.
	if end := q.AcquireAfter(50, 20, nil); end != 70 {
		t.Fatalf("AcquireAfter end = %v, want 70", end)
	}
	// Next request ready at t=60 must queue behind until 70.
	if end := q.AcquireAfter(60, 20, nil); end != 90 {
		t.Fatalf("queued AcquireAfter end = %v, want 90", end)
	}
}

func TestQueueUtilization(t *testing.T) {
	e := New()
	q := NewQueue(e)
	q.Acquire(25, nil)
	e.Run()
	e.RunUntil(100)
	if u := q.Utilization(); u != 0.25 {
		t.Fatalf("Utilization = %v, want 0.25", u)
	}
}

func TestQueueNegativeServicePanics(t *testing.T) {
	e := New()
	q := NewQueue(e)
	defer func() {
		if recover() == nil {
			t.Error("negative service did not panic")
		}
	}()
	q.Acquire(-1, nil)
}

func TestTransferTime(t *testing.T) {
	// 1000 bytes at 1 GB/s = 1000 ns.
	if tt := TransferTime(1000, 1e9); tt != 1000 {
		t.Fatalf("TransferTime = %v, want 1000", tt)
	}
	if tt := TransferTime(0, 1e9); tt != 0 {
		t.Fatalf("TransferTime(0) = %v, want 0", tt)
	}
	// Tiny transfers round up to 1 ns, never 0.
	if tt := TransferTime(1, 4e9); tt != 1 {
		t.Fatalf("TransferTime(1B@4GB/s) = %v, want 1", tt)
	}
}

func TestTransferTimeZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	TransferTime(10, 0)
}

// Property: total busy time equals the sum of service times, and the last
// completion equals that sum when all requests are issued at t=0.
func TestQueueConservationProperty(t *testing.T) {
	f := func(services []uint8) bool {
		e := New()
		q := NewQueue(e)
		var sum, last Time
		for _, s := range services {
			sum += Time(s)
			last = q.Acquire(Time(s), nil)
		}
		return q.BusyTotal() == sum && (len(services) == 0 || last == sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
