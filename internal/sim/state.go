package sim

import (
	"fmt"
	"math/bits"
	"sort"
)

// Snapshot support: an Engine's pending schedule is plain data as long as
// every pending event is a typed event — a (target, kind, payload) record.
// Closure events (At/After) carry arbitrary funcs and cannot be serialized;
// ExportState refuses them, which in practice means snapshots are taken
// after setup-phase closures have drained (the steady-state hot path is
// all typed events).
//
// Handlers are interface values, so the caller supplies the mapping between
// Handler identities and small integer IDs in both directions. The IDs are
// the caller's contract with itself: export and import must agree on them.

// SavedEvent is one pending scheduler entry in serializable form. Seq
// preserves the insertion order, so a restored schedule drains in exactly
// the original (time, insertion) order.
type SavedEvent struct {
	At     Time
	Seq    uint64
	Target int32
	Kind   uint16
	A, B   int32
	C      int64
}

// EngineState is the full serializable state of an Engine: the clock, the
// sequence and processed counters, and every pending event.
type EngineState struct {
	Now       Time
	Seq       uint64
	Processed uint64
	Events    []SavedEvent
}

// ExportState captures the engine's clock and pending schedule. targetID
// maps each distinct event target to a stable small integer; it should
// return an error for targets it does not recognize. ExportState fails if
// any pending event is a closure (At/After), since closures cannot be
// serialized — callers snapshot only after setup closures have drained.
//
// The engine is not mutated; an exported engine can keep running.
func (e *Engine) ExportState(targetID func(Handler) (int32, error)) (EngineState, error) {
	st := EngineState{
		Now:       e.now,
		Seq:       e.seq,
		Processed: e.processed,
		Events:    make([]SavedEvent, 0, e.Pending()),
	}
	save := func(ent *slabEntry) error {
		if ent.ev.Target == e {
			return fmt.Errorf("sim: cannot export engine state with pending closure event at %v", ent.at)
		}
		id, err := targetID(ent.ev.Target)
		if err != nil {
			return fmt.Errorf("sim: export event at %v: %w", ent.at, err)
		}
		st.Events = append(st.Events, SavedEvent{
			At: ent.at, Seq: ent.seq, Target: id,
			Kind: ent.ev.Kind, A: ent.ev.A, B: ent.ev.B, C: ent.ev.C,
		})
		return nil
	}
	// Walk the wheel's occupied buckets (via the occupancy bitmap) and then
	// the overflow heap. The order is deterministic but arbitrary; Seq is
	// what reconstructs the drain order on import.
	for w, word := range e.bmL1 {
		for m := word; m != 0; m &= m - 1 {
			idx := w<<6 | bits.TrailingZeros64(m)
			for ref := e.wheel[idx].head; ref != 0; ref = e.slab[ref-1].next {
				if err := save(&e.slab[ref-1]); err != nil {
					return EngineState{}, err
				}
			}
		}
	}
	for i := range e.overflow {
		if err := save(&e.slab[e.overflow[i].ref]); err != nil {
			return EngineState{}, err
		}
	}
	return st, nil
}

// ImportState restores a captured state into a fresh engine (zero clock, no
// pending or processed events). target is the inverse of ExportState's
// targetID mapping. Saved sequence numbers are preserved verbatim so ties
// at equal timestamps break identically to the original run.
func (e *Engine) ImportState(st EngineState, target func(int32) (Handler, error)) error {
	if e.Pending() != 0 || e.processed != 0 || e.now != 0 {
		return fmt.Errorf("sim: ImportState requires a fresh engine (pending=%d processed=%d now=%v)",
			e.Pending(), e.processed, e.now)
	}
	// Insert in (At, Seq) order: wheel buckets are FIFO lists, so arrival
	// order inside a bucket must be seq order.
	events := make([]SavedEvent, len(st.Events))
	copy(events, st.Events)
	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Seq < events[j].Seq
	})
	e.now = st.Now
	for _, sv := range events {
		h, err := target(sv.Target)
		if err != nil {
			return fmt.Errorf("sim: import event at %v: %w", sv.At, err)
		}
		if h == nil {
			return fmt.Errorf("sim: import event at %v: nil target for id %d", sv.At, sv.Target)
		}
		e.insert(sv.At, sv.Seq, Event{
			Target: h, Kind: sv.Kind, A: sv.A, B: sv.B, C: sv.C,
		})
	}
	e.seq = st.Seq
	e.processed = st.Processed
	return nil
}

// QueueState is the serializable state of a Queue (the bound engine is
// re-supplied on restore).
type QueueState struct {
	BusyUntil Time
	BusyTotal Time
	Waited    Time
	Served    uint64
}

// State captures the queue's booking and accounting state.
func (q *Queue) State() QueueState {
	return QueueState{BusyUntil: q.busyUntil, BusyTotal: q.busyTotal, Waited: q.waited, Served: q.served}
}

// Restore overwrites the queue's booking and accounting state.
func (q *Queue) Restore(st QueueState) {
	q.busyUntil = st.BusyUntil
	q.busyTotal = st.BusyTotal
	q.waited = st.Waited
	q.served = st.Served
}
