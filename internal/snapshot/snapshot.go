// Package snapshot is the durable checkpoint codec: a small, versioned,
// checksummed container for serialized engine and job state, written to
// disk atomically (write-temp + fsync + rename + directory fsync) so a
// crash at any instant leaves either the previous snapshot or the new one,
// never a torn file.
//
// Container layout (all integers big-endian):
//
//	offset 0   magic    "FWSNAP1\n" (8 bytes)
//	offset 8   version  uint32
//	offset 12  kindLen  uint16, then kindLen bytes of kind tag
//	...        payLen   uint64, then payLen bytes of gob payload
//	tail       sha256   32 bytes over everything before it
//
// The kind tag ("core-engine", "baseline-engine", ...) guards against
// decoding one engine's snapshot as another's; the checksum catches torn
// or bit-rotted files; the version gates forward-incompatible payloads.
// Payloads are encoding/gob of exported plain-data structs, so the format
// needs no third-party dependencies and tolerates field additions in
// future versions behind a version bump.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Version is the current container version. Decode rejects anything newer;
// older versions may be migrated here once they exist.
const Version = 1

var magic = [8]byte{'F', 'W', 'S', 'N', 'A', 'P', '1', '\n'}

// Sentinel errors, matchable with errors.Is.
var (
	// ErrCorrupt marks a truncated, torn, or checksum-failing container.
	ErrCorrupt = errors.New("snapshot: corrupt or truncated")
	// ErrVersion marks a container written by an incompatible version.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrKind marks a container holding a different kind of payload than
	// the caller asked for.
	ErrKind = errors.New("snapshot: unexpected kind")
)

// Encode gob-encodes v into a checksummed container tagged with kind.
func Encode(kind string, v any) ([]byte, error) {
	if len(kind) > 1<<16-1 {
		return nil, fmt.Errorf("snapshot: kind tag too long (%d bytes)", len(kind))
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("snapshot: encode %s payload: %w", kind, err)
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], Version)
	buf.Write(hdr[:])
	var klen [2]byte
	binary.BigEndian.PutUint16(klen[:], uint16(len(kind)))
	buf.Write(klen[:])
	buf.WriteString(kind)
	var plen [8]byte
	binary.BigEndian.PutUint64(plen[:], uint64(payload.Len()))
	buf.Write(plen[:])
	buf.Write(payload.Bytes())
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// Decode verifies the container's magic, version, kind, and checksum, then
// gob-decodes the payload into v. wantKind == "" accepts any kind.
func Decode(data []byte, wantKind string, v any) error {
	if len(data) < len(magic)+4+2+8+sha256.Size {
		return fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if !bytes.Equal(body[:len(magic)], magic[:]) {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(magic)
	ver := binary.BigEndian.Uint32(body[off:])
	off += 4
	if ver != Version {
		return fmt.Errorf("%w: container version %d, this build reads %d", ErrVersion, ver, Version)
	}
	klen := int(binary.BigEndian.Uint16(body[off:]))
	off += 2
	if off+klen+8 > len(body) {
		return fmt.Errorf("%w: kind tag overruns container", ErrCorrupt)
	}
	kind := string(body[off : off+klen])
	off += klen
	if wantKind != "" && kind != wantKind {
		return fmt.Errorf("%w: got %q, want %q", ErrKind, kind, wantKind)
	}
	plen := binary.BigEndian.Uint64(body[off:])
	off += 8
	if uint64(len(body)-off) != plen {
		return fmt.Errorf("%w: payload length %d, container holds %d", ErrCorrupt, plen, len(body)-off)
	}
	if err := gob.NewDecoder(bytes.NewReader(body[off:])).Decode(v); err != nil {
		return fmt.Errorf("%w: decode %s payload: %v", ErrCorrupt, kind, err)
	}
	return nil
}

// Seal returns the container's trailing SHA-256 checksum after verifying
// it matches the body. The seal uniquely identifies the encoded state
// image, so delta snapshots use it to name the exact base they chain to.
func Seal(data []byte) ([32]byte, error) {
	var sum [32]byte
	if len(data) < len(magic)+4+2+8+sha256.Size {
		return sum, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	body, tail := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], tail) {
		return sum, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	copy(sum[:], tail)
	return sum, nil
}

// WriteFileAtomic writes data to path atomically: a temp file in the same
// directory is written and fsynced, renamed over path, and the directory is
// fsynced so the rename itself is durable. Readers see either the old file
// or the new one, never a torn write.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteFile encodes v and writes the container to path atomically.
func WriteFile(path, kind string, v any) error {
	data, err := Encode(kind, v)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data, 0o644)
}

// ReadFile reads a container from path and decodes it into v.
func ReadFile(path, wantKind string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return Decode(data, wantKind, v)
}
