package snapshot

import (
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name  string
	Vals  []uint64
	Inner struct{ A, B int64 }
}

func testPayload() payload {
	p := payload{Name: "walks", Vals: []uint64{1, 2, 3, 1 << 60}}
	p.Inner.A, p.Inner.B = -7, 9
	return p
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := testPayload()
	data, err := Encode("test-kind", in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(data, "test-kind", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != len(in.Vals) || out.Inner != in.Inner {
		t.Fatalf("round trip mangled payload: %+v", out)
	}
	for i := range in.Vals {
		if out.Vals[i] != in.Vals[i] {
			t.Fatalf("vals[%d] = %d, want %d", i, out.Vals[i], in.Vals[i])
		}
	}
	// Any kind is accepted when the caller doesn't care.
	if err := Decode(data, "", &payload{}); err != nil {
		t.Fatalf("wildcard kind rejected: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode("test-kind", testPayload())
	if err != nil {
		t.Fatal(err)
	}

	// Every single-bit flip anywhere in the container must be caught by the
	// checksum (or, for flips inside the checksum itself, by the mismatch).
	for _, off := range []int{0, 5, 9, 15, len(data) / 2, len(data) - 40, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if err := Decode(mut, "test-kind", &payload{}); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip at %d: err %v, want ErrCorrupt", off, err)
		}
	}

	// Truncation at any boundary is corruption, never a panic.
	for _, n := range []int{0, 4, len(data) / 3, len(data) - 33, len(data) - 1} {
		if err := Decode(data[:n], "test-kind", &payload{}); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated to %d bytes: err %v, want ErrCorrupt", n, err)
		}
	}
}

func TestDecodeRejectsWrongKind(t *testing.T) {
	data, err := Encode("kind-a", testPayload())
	if err != nil {
		t.Fatal(err)
	}
	if err := Decode(data, "kind-b", &payload{}); !errors.Is(err, ErrKind) {
		t.Fatalf("wrong kind: err %v, want ErrKind", err)
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	data, err := Encode("test-kind", testPayload())
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version field and re-seal the checksum so only the version
	// check can object.
	data[8+3]++
	sum := sha256.Sum256(data[:len(data)-sha256.Size])
	copy(data[len(data)-sha256.Size:], sum[:])
	if err := Decode(data, "test-kind", &payload{}); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err %v, want ErrVersion", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.snap")
	in := testPayload()
	if err := WriteFile(path, "test-kind", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := ReadFile(path, "test-kind", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name {
		t.Fatalf("file round trip mangled payload: %+v", out)
	}
	// The temp file must not survive a successful rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("state dir holds %d entries after atomic write, want 1", len(entries))
	}

	// Overwrite with new content; readers must never see a mix.
	in.Name = "second"
	if err := WriteFile(path, "test-kind", in); err != nil {
		t.Fatal(err)
	}
	if err := ReadFile(path, "test-kind", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "second" {
		t.Fatalf("overwrite not visible: %+v", out)
	}
}

func TestSeal(t *testing.T) {
	data, err := Encode("test-kind", testPayload())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Seal(data)
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(data[:len(data)-sha256.Size])
	if sum != want {
		t.Fatalf("Seal = %x, want trailing checksum %x", sum, want)
	}
	// A corrupt container has no seal.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := Seal(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Seal of corrupt container: %v, want ErrCorrupt", err)
	}
	if _, err := Seal(bad[:8]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Seal of truncated container: %v, want ErrCorrupt", err)
	}
}
