// Package stats provides the statistical comparison functions the test
// suites and validation harness use to compare simulated engines against
// reference implementations: total variation distance, chi-square
// goodness-of-fit, Kolmogorov-Smirnov distance, and summary helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// TotalVariation computes the total variation distance between two
// empirical distributions given as non-negative count/mass vectors of
// equal length. Each vector is normalized to sum 1 first. Returns a value
// in [0,1]; 0 means identical.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(p), len(q))
	}
	sp, sq := sum(p), sum(q)
	if sp <= 0 || sq <= 0 {
		return 0, fmt.Errorf("stats: empty distribution")
	}
	var tv float64
	for i := range p {
		tv += math.Abs(p[i]/sp - q[i]/sq)
	}
	return tv / 2, nil
}

// ChiSquare computes the chi-square statistic of observed counts against
// expected counts (same length; expected entries must be positive).
func ChiSquare(observed, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: length mismatch")
	}
	var chi2 float64
	for i := range observed {
		if expected[i] <= 0 {
			return 0, fmt.Errorf("stats: non-positive expected count at %d", i)
		}
		d := observed[i] - expected[i]
		chi2 += d * d / expected[i]
	}
	return chi2, nil
}

// ChiSquareUniform tests observed counts against a uniform expectation.
func ChiSquareUniform(observed []float64) (float64, error) {
	if len(observed) == 0 {
		return 0, fmt.Errorf("stats: empty observation")
	}
	total := sum(observed)
	if total <= 0 {
		return 0, fmt.Errorf("stats: zero total")
	}
	expected := make([]float64, len(observed))
	for i := range expected {
		expected[i] = total / float64(len(observed))
	}
	return ChiSquare(observed, expected)
}

// KolmogorovSmirnov computes the two-sample KS statistic (max CDF gap)
// between two samples.
func KolmogorovSmirnov(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		// Advance through the smaller value on both sides together so
		// tied observations never create a spurious CDF gap.
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		gap := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if gap > d {
			d = gap
		}
	}
	return d, nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return sum(xs) / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank on a
// copy of xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v outside [0,100]", p)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank], nil
}

// Gini computes the Gini coefficient of non-negative values (0 = uniform,
// →1 = concentrated).
func Gini(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	total := sum(s)
	if total == 0 {
		return 0
	}
	var weighted float64
	for i, v := range s {
		weighted += float64(i+1) * v
	}
	g := (2*weighted)/(float64(n)*total) - float64(n+1)/float64(n)
	if g < 0 {
		g = 0
	}
	return g
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
