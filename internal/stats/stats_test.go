package stats

import (
	"math"
	"testing"

	"flashwalker/internal/rng"
)

func TestTotalVariationIdentical(t *testing.T) {
	p := []float64{1, 2, 3}
	tv, err := TotalVariation(p, p)
	if err != nil || tv != 0 {
		t.Fatalf("tv=%v err=%v", tv, err)
	}
}

func TestTotalVariationDisjoint(t *testing.T) {
	tv, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil || tv != 1 {
		t.Fatalf("tv=%v err=%v", tv, err)
	}
}

func TestTotalVariationNormalizes(t *testing.T) {
	// Scaling one side must not matter.
	a := []float64{1, 1, 2}
	b := []float64{10, 10, 20}
	tv, err := TotalVariation(a, b)
	if err != nil || tv > 1e-12 {
		t.Fatalf("tv=%v err=%v", tv, err)
	}
}

func TestTotalVariationErrors(t *testing.T) {
	if _, err := TotalVariation([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := TotalVariation([]float64{0}, []float64{0}); err == nil {
		t.Fatal("empty distributions accepted")
	}
}

func TestChiSquare(t *testing.T) {
	chi2, err := ChiSquare([]float64{12, 8}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chi2-0.8) > 1e-12 {
		t.Fatalf("chi2 = %v, want 0.8", chi2)
	}
	if _, err := ChiSquare([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatch accepted")
	}
	if _, err := ChiSquare([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero expected accepted")
	}
}

func TestChiSquareUniformDetectsSkew(t *testing.T) {
	r := rng.New(1)
	uniform := make([]float64, 10)
	for i := 0; i < 10000; i++ {
		uniform[r.Intn(10)]++
	}
	chiU, err := ChiSquareUniform(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if chiU > 30 {
		t.Fatalf("uniform sample chi2 = %v", chiU)
	}
	skewed := []float64{1000, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	chiS, _ := ChiSquareUniform(skewed)
	if chiS < 100 {
		t.Fatalf("skewed sample chi2 = %v", chiS)
	}
	if _, err := ChiSquareUniform(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := ChiSquareUniform([]float64{0, 0}); err == nil {
		t.Fatal("zero total accepted")
	}
}

func TestKolmogorovSmirnovSameSample(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	d, err := KolmogorovSmirnov(a, a)
	if err != nil || d > 1e-12 {
		t.Fatalf("d=%v err=%v", d, err)
	}
}

func TestKolmogorovSmirnovShifted(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{101, 102, 103}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil || d != 1 {
		t.Fatalf("disjoint samples d=%v", d)
	}
	if _, err := KolmogorovSmirnov(nil, a); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestKolmogorovSmirnovSensitivity(t *testing.T) {
	r := rng.New(3)
	var a, b []float64
	for i := 0; i < 2000; i++ {
		a = append(a, r.Float64())
		b = append(b, r.Float64()*0.5) // compressed distribution
	}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.3 {
		t.Fatalf("KS failed to separate distributions: %v", d)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Stddev(xs) != 2 {
		t.Fatalf("stddev %v", Stddev(xs))
	}
	if Mean(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	for _, c := range []struct {
		p, want float64
	}{{0, 1}, {20, 1}, {50, 3}, {100, 5}} {
		got, err := Percentile(xs, c.p)
		if err != nil || got != c.want {
			t.Fatalf("p%v = %v (err %v), want %v", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Percentile(xs, 200); err == nil {
		t.Fatal("bad percentile accepted")
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{5, 5, 5}); g > 1e-12 {
		t.Fatalf("uniform gini %v", g)
	}
	if g := Gini([]float64{0, 0, 0, 90}); g < 0.7 {
		t.Fatalf("skewed gini %v", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Fatal("degenerate gini")
	}
}
