package trace

import (
	"fmt"
	"sort"
	"strings"

	"flashwalker/internal/sim"
)

// Summary aggregates a recorded event stream into per-kind statistics and
// hot-spot lists for post-mortem analysis of a run.
type Summary struct {
	Span   sim.Time
	Events int

	Counts map[Kind]uint64
	// LoadsPerBlock counts subgraph loads keyed by block ID.
	LoadsPerBlock map[int64]uint64
	// WalksPerLoad is the mean walks delivered per subgraph load (the
	// batching quality metric behind the Figure-6 traffic analysis).
	WalksPerLoad float64
	// RovingBatchMean is the mean walks per roving fetch.
	RovingBatchMean float64
	// Completed / DeadEnded split the WalkDone events.
	Completed, DeadEnded uint64
}

// Summarize computes a Summary from events (any order; they are scanned
// once).
func Summarize(events []Event) *Summary {
	s := &Summary{
		Counts:        map[Kind]uint64{},
		LoadsPerBlock: map[int64]uint64{},
	}
	var loadWalks, rovingWalks, rovingBatches uint64
	for _, e := range events {
		s.Events++
		s.Counts[e.Kind]++
		if e.At > s.Span {
			s.Span = e.At
		}
		switch e.Kind {
		case SubgraphLoad:
			s.LoadsPerBlock[e.A]++
			loadWalks += uint64(e.B)
		case RovingBatch:
			rovingBatches++
			rovingWalks += uint64(e.B)
		case WalkDone:
			if e.A == 1 {
				s.Completed++
			} else {
				s.DeadEnded++
			}
		}
	}
	if n := s.Counts[SubgraphLoad]; n > 0 {
		s.WalksPerLoad = float64(loadWalks) / float64(n)
	}
	if rovingBatches > 0 {
		s.RovingBatchMean = float64(rovingWalks) / float64(rovingBatches)
	}
	return s
}

// HottestBlocks returns the top-k most-loaded block IDs, descending.
func (s *Summary) HottestBlocks(k int) []int64 {
	type bc struct {
		b int64
		n uint64
	}
	all := make([]bc, 0, len(s.LoadsPerBlock))
	for b, n := range s.LoadsPerBlock {
		all = append(all, bc{b, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].b < all[j].b
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].b
	}
	return out
}

// String renders a human-readable report.
func (s *Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d events over %v\n", s.Events, s.Span)
	kinds := make([]Kind, 0, len(s.Counts))
	for k := range s.Counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&sb, "  %-18s %d\n", k.String(), s.Counts[k])
	}
	fmt.Fprintf(&sb, "  walks/load        %.2f\n", s.WalksPerLoad)
	fmt.Fprintf(&sb, "  walks/roving batch %.2f\n", s.RovingBatchMean)
	fmt.Fprintf(&sb, "  completed/dead    %d/%d\n", s.Completed, s.DeadEnded)
	if top := s.HottestBlocks(5); len(top) > 0 {
		fmt.Fprintf(&sb, "  hottest blocks    %v\n", top)
	}
	return sb.String()
}
