package trace

import (
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{At: 10, Kind: PartitionSwitch, A: 0, B: 100},
		{At: 20, Kind: SubgraphLoad, A: 5, B: 10},
		{At: 30, Kind: SubgraphLoad, A: 5, B: 20},
		{At: 40, Kind: SubgraphLoad, A: 7, B: 30},
		{At: 50, Kind: RovingBatch, A: 1, B: 8},
		{At: 60, Kind: RovingBatch, A: 2, B: 4},
		{At: 70, Kind: WalkDone, A: 1},
		{At: 80, Kind: WalkDone, A: 0},
		{At: 90, Kind: WalkDone, A: 1},
	}
}

func TestSummarizeCounts(t *testing.T) {
	s := Summarize(sampleEvents())
	if s.Events != 9 || s.Span != 90 {
		t.Fatalf("events=%d span=%v", s.Events, s.Span)
	}
	if s.Counts[SubgraphLoad] != 3 || s.Counts[RovingBatch] != 2 {
		t.Fatal("kind counts wrong")
	}
	if s.Completed != 2 || s.DeadEnded != 1 {
		t.Fatalf("done split %d/%d", s.Completed, s.DeadEnded)
	}
}

func TestSummarizeMeans(t *testing.T) {
	s := Summarize(sampleEvents())
	if s.WalksPerLoad != 20 {
		t.Fatalf("walks/load = %v", s.WalksPerLoad)
	}
	if s.RovingBatchMean != 6 {
		t.Fatalf("roving mean = %v", s.RovingBatchMean)
	}
}

func TestHottestBlocks(t *testing.T) {
	s := Summarize(sampleEvents())
	top := s.HottestBlocks(2)
	if len(top) != 2 || top[0] != 5 || top[1] != 7 {
		t.Fatalf("top = %v", top)
	}
	if got := s.HottestBlocks(100); len(got) != 2 {
		t.Fatalf("over-ask = %v", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || s.WalksPerLoad != 0 || s.RovingBatchMean != 0 {
		t.Fatal("empty summary not zero")
	}
	if len(s.HottestBlocks(3)) != 0 {
		t.Fatal("hot blocks from nothing")
	}
}

func TestSummaryString(t *testing.T) {
	out := Summarize(sampleEvents()).String()
	for _, want := range []string{"subgraph-load", "walks/load", "hottest blocks", "completed/dead"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
