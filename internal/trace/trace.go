// Package trace records structured simulation events. A Tracer observes
// the FlashWalker engine's internals (subgraph loads, roving batches,
// buffer flushes, partition switches) with timestamps, for debugging,
// visualization, and tests that assert on event ordering.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"flashwalker/internal/sim"
)

// Kind classifies an event.
type Kind int

const (
	// SubgraphLoad: a chip-level accelerator loads a subgraph.
	SubgraphLoad Kind = iota
	// RovingBatch: a channel-level accelerator fetches roving walks.
	RovingBatch
	// PWBOverflow: a partition walk buffer entry flushed to flash.
	PWBOverflow
	// ForeignerFlush: the foreigner buffer flushed to flash.
	ForeignerFlush
	// PartitionSwitch: the engine advanced to another partition.
	PartitionSwitch
	// WalkDone: a walk completed or dead-ended.
	WalkDone
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case SubgraphLoad:
		return "subgraph-load"
	case RovingBatch:
		return "roving-batch"
	case PWBOverflow:
		return "pwb-overflow"
	case ForeignerFlush:
		return "foreigner-flush"
	case PartitionSwitch:
		return "partition-switch"
	case WalkDone:
		return "walk-done"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence. A/B are kind-specific:
//
//	SubgraphLoad:    A = block ID,  B = walks taken
//	RovingBatch:     A = chip ID,   B = walks moved
//	PWBOverflow:     A = block ID,  B = walks flushed
//	ForeignerFlush:  A = bytes,     B = 0
//	PartitionSwitch: A = partition, B = pending walks
//	WalkDone:        A = 1 if completed / 0 if dead-ended, B = 0
type Event struct {
	At   sim.Time `json:"at"`
	Kind Kind     `json:"kind"`
	A    int64    `json:"a"`
	B    int64    `json:"b"`
}

// Tracer receives events. Implementations must be cheap: the engine emits
// on hot paths.
type Tracer interface {
	Emit(e Event)
}

// Recorder is an in-memory Tracer with per-kind counts. Safe for
// concurrent use (the DES itself is single-threaded but tests may read
// while helper goroutines run).
type Recorder struct {
	mu     sync.Mutex
	events []Event
	counts [numKinds]uint64
	// Cap bounds memory; 0 = unlimited. When full, events drop but counts
	// continue.
	Cap int
}

// NewRecorder returns an unbounded in-memory recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.Kind >= 0 && e.Kind < numKinds {
		r.counts[e.Kind]++
	}
	if r.Cap == 0 || len(r.events) < r.Cap {
		r.events = append(r.events, e)
	}
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Count reports occurrences of a kind (including dropped events).
func (r *Recorder) Count(k Kind) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k < 0 || k >= numKinds {
		return 0
	}
	return r.counts[k]
}

// Len reports stored events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Writer is a Tracer that streams events as JSON lines.
type Writer struct {
	enc *json.Encoder
	err error
}

// NewWriter returns a JSONL-emitting tracer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w)}
}

// Emit implements Tracer. The first encoding error sticks; later events
// are dropped.
func (w *Writer) Emit(e Event) {
	if w.err != nil {
		return
	}
	type jsonEvent struct {
		At   int64  `json:"at_ns"`
		Kind string `json:"kind"`
		A    int64  `json:"a"`
		B    int64  `json:"b"`
	}
	w.err = w.enc.Encode(jsonEvent{At: int64(e.At), Kind: e.Kind.String(), A: e.A, B: e.B})
}

// Err reports the first write error, if any.
func (w *Writer) Err() error { return w.err }

// kindByName maps the JSONL kind strings back to Kinds.
var kindByName = func() map[string]Kind {
	m := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

// ReadJSONL parses a trace written by Writer. Unknown kinds are an error;
// blank lines are skipped.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var je struct {
			At   int64  `json:"at_ns"`
			Kind string `json:"kind"`
			A    int64  `json:"a"`
			B    int64  `json:"b"`
		}
		if err := dec.Decode(&je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", len(out)+1, err)
		}
		k, ok := kindByName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", len(out)+1, je.Kind)
		}
		out = append(out, Event{At: sim.Time(je.At), Kind: k, A: je.A, B: je.B})
	}
	return out, nil
}

// Multi fans one event out to several tracers.
func Multi(ts ...Tracer) Tracer { return multi(ts) }

type multi []Tracer

func (m multi) Emit(e Event) {
	for _, t := range m {
		if t != nil {
			t.Emit(e)
		}
	}
}
