package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		SubgraphLoad:    "subgraph-load",
		RovingBatch:     "roving-batch",
		PWBOverflow:     "pwb-overflow",
		ForeignerFlush:  "foreigner-flush",
		PartitionSwitch: "partition-switch",
		WalkDone:        "walk-done",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestRecorderCountsAndEvents(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{At: 1, Kind: SubgraphLoad, A: 5, B: 10})
	r.Emit(Event{At: 2, Kind: SubgraphLoad, A: 6, B: 1})
	r.Emit(Event{At: 3, Kind: WalkDone, A: 1})
	if r.Count(SubgraphLoad) != 2 || r.Count(WalkDone) != 1 {
		t.Fatal("counts wrong")
	}
	if r.Count(Kind(99)) != 0 {
		t.Fatal("invalid kind count")
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].A != 5 || evs[2].Kind != WalkDone {
		t.Fatalf("events %v", evs)
	}
	if r.Len() != 3 {
		t.Fatal("Len")
	}
}

func TestRecorderCap(t *testing.T) {
	r := &Recorder{Cap: 2}
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: WalkDone})
	}
	if r.Len() != 2 {
		t.Fatalf("stored %d, want cap 2", r.Len())
	}
	if r.Count(WalkDone) != 5 {
		t.Fatal("count must include dropped events")
	}
}

func TestWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{At: 42, Kind: RovingBatch, A: 3, B: 7})
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	var decoded struct {
		At   int64  `json:"at_ns"`
		Kind string `json:"kind"`
		A, B int64
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.At != 42 || decoded.Kind != "roving-batch" || decoded.A != 3 {
		t.Fatalf("decoded %+v", decoded)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "fail" }

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	w.Emit(Event{})
	if w.Err() == nil {
		t.Fatal("error not surfaced")
	}
	w.Emit(Event{}) // must not panic
}

func TestMulti(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	m := Multi(a, nil, b)
	m.Emit(Event{Kind: PWBOverflow})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("fan-out failed")
	}
}

func TestReadJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := []Event{
		{At: 1, Kind: SubgraphLoad, A: 2, B: 3},
		{At: 4, Kind: WalkDone, A: 1},
		{At: 9, Kind: PartitionSwitch, A: 0, B: 7},
	}
	for _, e := range events {
		w.Emit(e)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("%d events", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadJSONLRejectsUnknownKind(t *testing.T) {
	in := `{"at_ns":1,"kind":"mystery","a":0,"b":0}`
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("{bad json")); err == nil {
		t.Fatal("bad json accepted")
	}
}

func TestWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		w.Emit(Event{At: 1, Kind: WalkDone})
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 3 {
		t.Fatalf("%d lines", lines)
	}
}
