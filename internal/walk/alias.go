package walk

import (
	"fmt"

	"flashwalker/internal/graph"
	"flashwalker/internal/rng"
)

// AliasTable samples an index proportionally to a weight vector in O(1)
// using Vose's alias method — the constant-time alternative to the paper's
// inverse-transform-sampling binary search. KnightKing uses alias tables
// for static biased walks; the trade-off is 2x the per-edge metadata
// (probability + alias entries) against O(log deg) saved per sample.
type AliasTable struct {
	prob  []float64
	alias []int32
}

// NewAliasTable builds a table for the given non-negative weights. The sum
// must be positive and the count must fit in int32.
func NewAliasTable(weights []float32) (*AliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("walk: alias table over no weights")
	}
	if n > 1<<31-1 {
		return nil, fmt.Errorf("walk: alias table too large (%d)", n)
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("walk: negative weight at %d", i)
		}
		sum += float64(w)
	}
	if sum <= 0 {
		return nil, fmt.Errorf("walk: zero total weight")
	}
	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Vose's algorithm: partition scaled probabilities into small/large,
	// pair each small cell with a large donor.
	scaled := make([]float64, n)
	var small, large []int32
	for i, w := range weights {
		scaled[i] = float64(w) * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are full cells.
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1
	}
	return t, nil
}

// Len reports the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

// Sample draws one index in O(1): a uniform cell plus one biased coin.
func (t *AliasTable) Sample(r *rng.RNG) int {
	i := r.Intn(len(t.prob))
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// SizeBytes reports the table's metadata footprint (8B prob + 4B alias per
// outcome).
func (t *AliasTable) SizeBytes() int64 { return int64(len(t.prob)) * 12 }

// GraphAlias holds per-vertex alias tables for a weighted graph, the
// storage layout an alias-sampling accelerator would keep next to each
// subgraph's edges.
type GraphAlias struct {
	tables []*AliasTable // nil for zero-degree vertices
	bytes  int64
}

// NewGraphAlias precomputes alias tables for every vertex of a weighted
// graph (unweighted graphs don't need them — uniform sampling is already
// O(1)).
func NewGraphAlias(g *graph.Graph) (*GraphAlias, error) {
	if !g.Weighted() {
		return nil, fmt.Errorf("walk: alias tables need a weighted graph")
	}
	ga := &GraphAlias{tables: make([]*AliasTable, g.NumVertices())}
	for v := graph.VertexID(0); v < g.NumVertices(); v++ {
		w := g.OutWeights(v)
		if len(w) == 0 {
			continue
		}
		t, err := NewAliasTable(w)
		if err != nil {
			return nil, fmt.Errorf("walk: vertex %d: %w", v, err)
		}
		ga.tables[v] = t
		ga.bytes += t.SizeBytes()
	}
	return ga, nil
}

// RebuildVertex recomputes v's alias table from its current out-weights —
// the incremental maintenance hook for graph mutations. A table is a pure
// function of one vertex's weight vector, so rebuilding only the mutated
// vertex leaves the whole structure identical to NewGraphAlias over the
// mutated graph.
func (ga *GraphAlias) RebuildVertex(g *graph.Graph, v graph.VertexID) error {
	if t := ga.tables[v]; t != nil {
		ga.bytes -= t.SizeBytes()
		ga.tables[v] = nil
	}
	w := g.OutWeights(v)
	if len(w) == 0 {
		return nil
	}
	t, err := NewAliasTable(w)
	if err != nil {
		return fmt.Errorf("walk: vertex %d: %w", v, err)
	}
	ga.tables[v] = t
	ga.bytes += t.SizeBytes()
	return nil
}

// ChooseEdge samples an out-edge index of v in O(1). v must have
// out-edges.
func (ga *GraphAlias) ChooseEdge(r *rng.RNG, v graph.VertexID) uint64 {
	t := ga.tables[v]
	if t == nil {
		panic("walk: alias ChooseEdge on dead-end vertex")
	}
	return uint64(t.Sample(r))
}

// SizeBytes reports the total alias metadata footprint across the graph.
func (ga *GraphAlias) SizeBytes() int64 { return ga.bytes }
