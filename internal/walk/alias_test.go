package walk

import (
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/rng"
	"flashwalker/internal/stats"
)

func TestAliasTableMatchesWeights(t *testing.T) {
	weights := []float32{1, 3, 6, 0, 10}
	tab, err := NewAliasTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	const draws = 200000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[tab.Sample(r)]++
	}
	var sum float64
	for _, w := range weights {
		sum += float64(w)
	}
	expected := make([]float64, len(weights))
	for i, w := range weights {
		expected[i] = float64(w) / sum * draws
	}
	if counts[3] != 0 {
		t.Fatalf("zero-weight outcome drawn %v times", counts[3])
	}
	// Chi-square over the non-zero outcomes.
	obs := []float64{counts[0], counts[1], counts[2], counts[4]}
	exp := []float64{expected[0], expected[1], expected[2], expected[4]}
	chi2, err := stats.ChiSquare(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 > 20 {
		t.Fatalf("alias distribution off: chi2 = %v (counts %v)", chi2, counts)
	}
}

func TestAliasTableUniform(t *testing.T) {
	tab, err := NewAliasTable([]float32{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// All cells should be full (prob 1) for uniform weights.
	r := rng.New(2)
	counts := make([]float64, 4)
	for i := 0; i < 40000; i++ {
		counts[tab.Sample(r)]++
	}
	chi2, _ := stats.ChiSquareUniform(counts)
	if chi2 > 20 {
		t.Fatalf("uniform alias chi2 = %v", chi2)
	}
}

func TestAliasTableSingleOutcome(t *testing.T) {
	tab, err := NewAliasTable([]float32{7})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		if tab.Sample(r) != 0 {
			t.Fatal("single-outcome table sampled nonzero")
		}
	}
	if tab.Len() != 1 || tab.SizeBytes() != 12 {
		t.Fatal("geometry")
	}
}

func TestAliasTableRejectsBadInput(t *testing.T) {
	if _, err := NewAliasTable(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NewAliasTable([]float32{0, 0}); err == nil {
		t.Fatal("zero-sum accepted")
	}
	if _, err := NewAliasTable([]float32{1, -1}); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestGraphAliasMatchesITS(t *testing.T) {
	// The alias sampler and the ITS sampler must produce the same
	// distribution on a weighted vertex.
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(0, 2, 3)
	b.AddWeightedEdge(0, 3, 6)
	g, _ := b.Build()
	ga, err := NewGraphAlias(g)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Kind: Biased, Length: 1}
	r1, r2 := rng.New(5), rng.New(6)
	const draws = 100000
	aliasCounts := make([]float64, 3)
	itsCounts := make([]float64, 3)
	for i := 0; i < draws; i++ {
		aliasCounts[ga.ChooseEdge(r1, 0)]++
		idx, _ := spec.ChooseEdge(r2, 3, g.OutCumWeights(0))
		itsCounts[idx]++
	}
	tv, err := stats.TotalVariation(aliasCounts, itsCounts)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.01 {
		t.Fatalf("alias vs ITS distributions diverge: TV %v (alias %v, its %v)",
			tv, aliasCounts, itsCounts)
	}
}

func TestGraphAliasRejectsUnweighted(t *testing.T) {
	if _, err := NewGraphAlias(graph.Ring(4)); err == nil {
		t.Fatal("unweighted graph accepted")
	}
}

func TestGraphAliasDeadEndPanics(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddWeightedEdge(0, 1, 1)
	g, _ := b.Build()
	ga, _ := NewGraphAlias(g)
	defer func() {
		if recover() == nil {
			t.Error("dead-end sample did not panic")
		}
	}()
	ga.ChooseEdge(rng.New(1), 1)
}

func TestGraphAliasSize(t *testing.T) {
	cfg := graph.DefaultRMAT(256, 2048, 7)
	cfg.Weighted = true
	g, _ := graph.RMAT(cfg)
	ga, err := NewGraphAlias(g)
	if err != nil {
		t.Fatal(err)
	}
	if ga.SizeBytes() != int64(g.NumEdges())*12 {
		t.Fatalf("size %d, want %d", ga.SizeBytes(), g.NumEdges()*12)
	}
}
