package walk

import (
	"fmt"
	"sort"

	"flashwalker/internal/graph"
	"flashwalker/internal/rng"
)

// This file implements the random-walk applications the paper's
// introduction motivates FlashWalker with: Personalized PageRank, SimRank,
// DeepWalk corpus generation, node2vec's second-order walks, and graphlet
// (wedge-closure) sampling. They are reference CPU implementations built
// on the same Spec/Run machinery the simulated engines execute, so the
// engines' outputs can be validated against them.

// PPREstimate approximates the Personalized PageRank vector of source by
// Monte-Carlo: numWalks restart walks with restart probability alpha; the
// visit frequencies converge to the PPR scores. The returned vector sums
// to 1 (dead-end visits included).
func PPREstimate(g *graph.Graph, source graph.VertexID, numWalks int, alpha float64, seed uint64) ([]float64, error) {
	if source >= g.NumVertices() {
		return nil, fmt.Errorf("walk: source %d out of range", source)
	}
	if numWalks <= 0 {
		return nil, fmt.Errorf("walk: numWalks %d <= 0", numWalks)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("walk: alpha %v outside (0,1)", alpha)
	}
	spec := Spec{Kind: Restart, Length: 1 << 14, StopProb: alpha}
	ws := NewWalks(spec, []graph.VertexID{source}, numWalks)
	st, err := Run(g, spec, ws, seed, nil)
	if err != nil {
		return nil, err
	}
	total := float64(st.TotalHops) + float64(st.Started)
	out := make([]float64, g.NumVertices())
	for v, n := range st.Visits {
		out[v] = float64(n) / total
	}
	return out, nil
}

// TopK returns the indices of the k largest scores, descending (ties by
// lower index first).
func TopK(scores []float64, k int) []graph.VertexID {
	type sv struct {
		v graph.VertexID
		s float64
	}
	all := make([]sv, 0, len(scores))
	for v, s := range scores {
		if s > 0 {
			all = append(all, sv{graph.VertexID(v), s})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]graph.VertexID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}

// SimRank estimates the SimRank similarity s(u,v) (Jeh & Widom, KDD'02)
// by the random-surfer-pair interpretation: two reverse walks of decay C
// meet at step t with contribution C^t. This forward-walk variant runs
// pairs of walks on the graph as given (use a reversed graph for the exact
// in-link semantics).
func SimRank(g *graph.Graph, u, v graph.VertexID, pairs int, length uint32, c float64, seed uint64) (float64, error) {
	if u >= g.NumVertices() || v >= g.NumVertices() {
		return 0, fmt.Errorf("walk: vertex out of range")
	}
	if pairs <= 0 || length == 0 {
		return 0, fmt.Errorf("walk: pairs/length must be positive")
	}
	if c <= 0 || c >= 1 {
		return 0, fmt.Errorf("walk: decay %v outside (0,1)", c)
	}
	if u == v {
		return 1, nil
	}
	r := rng.New(seed)
	var sum float64
	for i := 0; i < pairs; i++ {
		a, b := u, v
		decay := 1.0
		for t := uint32(0); t < length; t++ {
			da, db := g.OutDegree(a), g.OutDegree(b)
			if da == 0 || db == 0 {
				break
			}
			a = g.OutEdges(a)[r.Uint64n(da)]
			b = g.OutEdges(b)[r.Uint64n(db)]
			decay *= c
			if a == b {
				sum += decay
				break
			}
		}
	}
	return sum / float64(pairs), nil
}

// DeepWalkCorpus generates the DeepWalk training corpus: walksPerVertex
// unbiased walks of the given length from every vertex, returned as vertex
// paths ("sentences").
func DeepWalkCorpus(g *graph.Graph, walksPerVertex int, length uint32, seed uint64) ([][]graph.VertexID, error) {
	if walksPerVertex <= 0 || length == 0 {
		return nil, fmt.Errorf("walk: walksPerVertex/length must be positive")
	}
	spec := Spec{Kind: Unbiased, Length: length}
	starts := AllStarts(g)
	ws := NewWalks(spec, starts, len(starts)*walksPerVertex)
	corpus := make([][]graph.VertexID, 0, len(ws))
	_, err := Run(g, spec, ws, seed, func(i int, path []graph.VertexID) {
		corpus = append(corpus, append([]graph.VertexID(nil), path...))
	})
	if err != nil {
		return nil, err
	}
	return corpus, nil
}

// Node2VecWalks generates node2vec's second-order biased walks (Grover &
// Leskovec, KDD'16) with return parameter p and in-out parameter q, using
// KnightKing-style rejection sampling: a uniform neighbor proposal is
// accepted with probability w/wMax where w is 1/p for returning to the
// previous vertex, 1 for a neighbor of the previous vertex, and 1/q
// otherwise. This is the *dynamic* walk class of §II-A (the sampling
// distribution depends on walk state).
func Node2VecWalks(g *graph.Graph, p, q float64, walksPerVertex int, length uint32, seed uint64) ([][]graph.VertexID, error) {
	if p <= 0 || q <= 0 {
		return nil, fmt.Errorf("walk: p/q must be positive")
	}
	if walksPerVertex <= 0 || length == 0 {
		return nil, fmt.Errorf("walk: walksPerVertex/length must be positive")
	}
	wReturn, wCommon, wOut := 1/p, 1.0, 1/q
	wMax := wReturn
	if wCommon > wMax {
		wMax = wCommon
	}
	if wOut > wMax {
		wMax = wOut
	}

	root := rng.New(seed)
	var corpus [][]graph.VertexID
	n := g.NumVertices()
	for start := graph.VertexID(0); start < n; start++ {
		for k := 0; k < walksPerVertex; k++ {
			r := root.Derive(uint64(start)*1000 + uint64(k))
			path := []graph.VertexID{start}
			cur := start
			prev := graph.VertexID(n) // sentinel: no previous vertex yet
			for step := uint32(0); step < length; step++ {
				deg := g.OutDegree(cur)
				if deg == 0 {
					break
				}
				var next graph.VertexID
				if prev == n {
					// First hop is plain uniform.
					next = g.OutEdges(cur)[r.Uint64n(deg)]
				} else {
					next = sampleSecondOrder(g, r, cur, prev, deg, wReturn, wCommon, wOut, wMax)
				}
				path = append(path, next)
				prev, cur = cur, next
			}
			corpus = append(corpus, path)
		}
	}
	return corpus, nil
}

// sampleSecondOrder draws one node2vec transition by rejection sampling.
func sampleSecondOrder(g *graph.Graph, r *rng.RNG, cur, prev graph.VertexID, deg uint64,
	wReturn, wCommon, wOut, wMax float64) graph.VertexID {
	prevAdj := g.OutEdges(prev)
	for {
		cand := g.OutEdges(cur)[r.Uint64n(deg)]
		var w float64
		switch {
		case cand == prev:
			w = wReturn
		case containsSorted(prevAdj, cand):
			w = wCommon
		default:
			w = wOut
		}
		if w >= wMax || r.Float64() < w/wMax {
			return cand
		}
	}
}

// containsSorted binary-searches a sorted adjacency list.
func containsSorted(adj []graph.VertexID, v graph.VertexID) bool {
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// WedgeClosure estimates the global clustering coefficient (the graphlet
// concentration of triangles among wedges) by sampling: pick a random
// vertex with degree >= 2, walk to two distinct random neighbors, and
// check whether they are connected.
func WedgeClosure(g *graph.Graph, samples int, seed uint64) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("walk: samples %d <= 0", samples)
	}
	r := rng.New(seed)
	// Collect vertices with degree >= 2 once.
	var centers []graph.VertexID
	for v := graph.VertexID(0); v < g.NumVertices(); v++ {
		if g.OutDegree(v) >= 2 {
			centers = append(centers, v)
		}
	}
	if len(centers) == 0 {
		return 0, nil
	}
	closed := 0
	for i := 0; i < samples; i++ {
		c := centers[r.Intn(len(centers))]
		adj := g.OutEdges(c)
		a := adj[r.Intn(len(adj))]
		b := adj[r.Intn(len(adj))]
		for b == a {
			b = adj[r.Intn(len(adj))]
		}
		if containsSorted(g.OutEdges(a), b) || containsSorted(g.OutEdges(b), a) {
			closed++
		}
	}
	return float64(closed) / float64(samples), nil
}
