package walk

import (
	"math"
	"testing"

	"flashwalker/internal/graph"
)

func TestPPREstimateSumsToOne(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(512, 4096, 1))
	ppr, err := PPREstimate(g, 0, 5000, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range ppr {
		if p < 0 {
			t.Fatal("negative score")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores sum to %v", sum)
	}
}

func TestPPRSourceDominates(t *testing.T) {
	// With a high restart probability the source must hold the largest
	// score.
	g := graph.Complete(50)
	ppr, err := PPREstimate(g, 7, 20000, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range ppr {
		if v != 7 && p >= ppr[7] {
			t.Fatalf("vertex %d score %v >= source %v", v, p, ppr[7])
		}
	}
}

func TestPPRUniformOnCompleteGraph(t *testing.T) {
	// On a complete graph all non-source vertices are symmetric.
	g := graph.Complete(20)
	ppr, err := PPREstimate(g, 0, 50000, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	var others []float64
	for v := 1; v < 20; v++ {
		others = append(others, ppr[v])
	}
	mean := 0.0
	for _, p := range others {
		mean += p
	}
	mean /= float64(len(others))
	for v, p := range others {
		if math.Abs(p-mean) > 0.25*mean {
			t.Fatalf("vertex %d deviates: %v vs mean %v", v+1, p, mean)
		}
	}
}

func TestPPRRejectsBadInputs(t *testing.T) {
	g := graph.Ring(4)
	if _, err := PPREstimate(g, 99, 100, 0.2, 1); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := PPREstimate(g, 0, 0, 0.2, 1); err == nil {
		t.Fatal("zero walks accepted")
	}
	if _, err := PPREstimate(g, 0, 100, 0, 1); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := PPREstimate(g, 0, 100, 1, 1); err == nil {
		t.Fatal("alpha=1 accepted")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.5, 0, 0.3, 0.5}
	top := TopK(scores, 3)
	if len(top) != 3 || top[0] != 1 || top[1] != 4 || top[2] != 3 {
		t.Fatalf("TopK = %v", top)
	}
	if got := TopK(scores, 100); len(got) != 4 { // zero excluded
		t.Fatalf("TopK over-ask = %v", got)
	}
}

func TestSimRankIdentity(t *testing.T) {
	g := graph.Ring(10)
	s, err := SimRank(g, 3, 3, 100, 5, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("SimRank(v,v) = %v", s)
	}
}

func TestSimRankRingNeverMeets(t *testing.T) {
	// Walks on a directed ring keep their initial separation, so distinct
	// vertices never meet.
	g := graph.Ring(10)
	s, err := SimRank(g, 0, 5, 2000, 8, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("ring SimRank = %v, want 0", s)
	}
}

func TestSimRankMeetingOnFunnel(t *testing.T) {
	// Both u and v point only at w: the pair meets at step 1 with
	// probability 1, so SimRank = C.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	g, _ := b.Build()
	s, err := SimRank(g, 0, 1, 5000, 5, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.6) > 1e-9 {
		t.Fatalf("funnel SimRank = %v, want 0.6", s)
	}
}

func TestSimRankComplete(t *testing.T) {
	// On K_n the per-step meeting probability is ~1/n; SimRank is
	// positive and below C.
	g := graph.Complete(10)
	s, err := SimRank(g, 0, 1, 20000, 20, 0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s >= 0.6 {
		t.Fatalf("K10 SimRank = %v", s)
	}
}

func TestSimRankRejectsBadInputs(t *testing.T) {
	g := graph.Ring(4)
	if _, err := SimRank(g, 9, 0, 10, 5, 0.6, 1); err == nil {
		t.Fatal("bad vertex accepted")
	}
	if _, err := SimRank(g, 0, 1, 0, 5, 0.6, 1); err == nil {
		t.Fatal("zero pairs accepted")
	}
	if _, err := SimRank(g, 0, 1, 10, 0, 0.6, 1); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := SimRank(g, 0, 1, 10, 5, 1.5, 1); err == nil {
		t.Fatal("bad decay accepted")
	}
}

func TestDeepWalkCorpusShape(t *testing.T) {
	g := graph.Ring(50)
	corpus, err := DeepWalkCorpus(g, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 100 {
		t.Fatalf("corpus size %d, want 100", len(corpus))
	}
	for _, path := range corpus {
		if len(path) != 5 { // start + 4 hops, no dead ends on a ring
			t.Fatalf("path length %d", len(path))
		}
		for i := 1; i < len(path); i++ {
			if path[i] != (path[i-1]+1)%50 {
				t.Fatalf("non-edge step in %v", path)
			}
		}
	}
}

func TestDeepWalkCorpusCoversAllVertices(t *testing.T) {
	g := graph.Ring(20)
	corpus, err := DeepWalkCorpus(g, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.VertexID]bool{}
	for _, p := range corpus {
		seen[p[0]] = true
	}
	if len(seen) != 20 {
		t.Fatalf("only %d start vertices", len(seen))
	}
	if _, err := DeepWalkCorpus(g, 0, 3, 1); err == nil {
		t.Fatal("zero walksPerVertex accepted")
	}
}

func TestNode2VecPathsAreWalks(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(256, 4096, 5))
	corpus, err := Node2VecWalks(g, 1, 1, 1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != int(g.NumVertices()) {
		t.Fatalf("corpus %d", len(corpus))
	}
	for _, p := range corpus {
		for i := 1; i < len(p); i++ {
			if !containsSorted(g.OutEdges(p[i-1]), p[i]) {
				t.Fatalf("step %d->%d is not an edge", p[i-1], p[i])
			}
		}
	}
}

func TestNode2VecReturnBias(t *testing.T) {
	// Small p (cheap returns) must produce more immediate backtracks than
	// large p on a graph where backtracking is possible.
	b := graph.NewBuilder(40)
	for v := uint64(0); v < 40; v++ {
		b.AddEdge(v, (v+1)%40)
		b.AddEdge((v+1)%40, v)
		b.AddEdge(v, (v+7)%40)
		b.AddEdge((v+7)%40, v)
	}
	g, _ := b.Build()
	countReturns := func(p float64) int {
		corpus, err := Node2VecWalks(g, p, 1, 20, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, path := range corpus {
			for i := 2; i < len(path); i++ {
				if path[i] == path[i-2] {
					n++
				}
			}
		}
		return n
	}
	low, high := countReturns(0.1), countReturns(10)
	if low <= high {
		t.Fatalf("p=0.1 returns %d <= p=10 returns %d", low, high)
	}
}

func TestNode2VecRejectsBadInputs(t *testing.T) {
	g := graph.Ring(8)
	if _, err := Node2VecWalks(g, 0, 1, 1, 4, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := Node2VecWalks(g, 1, -1, 1, 4, 1); err == nil {
		t.Fatal("q<0 accepted")
	}
	if _, err := Node2VecWalks(g, 1, 1, 0, 4, 1); err == nil {
		t.Fatal("zero walks accepted")
	}
}

func TestContainsSorted(t *testing.T) {
	adj := []graph.VertexID{2, 5, 7, 11}
	for _, v := range adj {
		if !containsSorted(adj, v) {
			t.Fatalf("missing %d", v)
		}
	}
	for _, v := range []graph.VertexID{0, 3, 12} {
		if containsSorted(adj, v) {
			t.Fatalf("false member %d", v)
		}
	}
	if containsSorted(nil, 1) {
		t.Fatal("empty list member")
	}
}

func TestWedgeClosureComplete(t *testing.T) {
	// Every wedge in a complete graph closes.
	g := graph.Complete(12)
	c, err := WedgeClosure(g, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Fatalf("K12 closure = %v, want 1", c)
	}
}

func TestWedgeClosureStar(t *testing.T) {
	// Star wedges (spoke-hub-spoke) never close.
	g := graph.Star(30)
	c, err := WedgeClosure(g, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("star closure = %v, want 0", c)
	}
}

func TestWedgeClosureNoCenters(t *testing.T) {
	g := graph.Ring(10) // all degrees 1
	c, err := WedgeClosure(g, 100, 3)
	if err != nil || c != 0 {
		t.Fatalf("ring closure = %v err %v", c, err)
	}
	if _, err := WedgeClosure(g, 0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
}
