package walk

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"flashwalker/internal/graph"
)

// WriteCorpus writes a walk corpus in the whitespace-separated text format
// skip-gram trainers (word2vec and friends) consume: one walk per line,
// vertex IDs as tokens.
func WriteCorpus(w io.Writer, corpus [][]graph.VertexID) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, path := range corpus {
		for i, v := range path {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(v, 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxCorpusLine bounds a single corpus line (one walk). A walk line can
// exceed bufio.Scanner's 64 KiB default — and the 1 MiB cap this reader
// used to impose — easily: 50k hops of 20-digit vertex IDs is ~1 MiB, so
// long walks on large graphs would fail with bufio.ErrTooLong. The scanner
// grows its buffer on demand, so the generous cap costs nothing on short
// lines.
const maxCorpusLine = 1 << 30

// ReadCorpus parses the format WriteCorpus emits. Empty lines are skipped.
func ReadCorpus(r io.Reader) ([][]graph.VertexID, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxCorpusLine)
	var corpus [][]graph.VertexID
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		path := make([]graph.VertexID, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("walk: corpus line %d token %d: %w", line, i, err)
			}
			path[i] = v
		}
		corpus = append(corpus, path)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("walk: reading corpus: %w", err)
	}
	return corpus, nil
}

// CorpusStats summarizes a corpus: walk count, token count, and the mean
// walk length in hops.
func CorpusStats(corpus [][]graph.VertexID) (walks, tokens int, meanHops float64) {
	walks = len(corpus)
	for _, p := range corpus {
		tokens += len(p)
	}
	if walks > 0 {
		meanHops = float64(tokens-walks) / float64(walks)
	}
	return
}
