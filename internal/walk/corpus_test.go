package walk

import (
	"bytes"
	"strings"
	"testing"

	"flashwalker/internal/graph"
)

func TestCorpusRoundTrip(t *testing.T) {
	corpus := [][]graph.VertexID{
		{0, 1, 2},
		{5},
		{9, 8, 7, 6},
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(corpus) {
		t.Fatalf("%d walks", len(got))
	}
	for i := range corpus {
		if len(got[i]) != len(corpus[i]) {
			t.Fatalf("walk %d length changed", i)
		}
		for j := range corpus[i] {
			if got[i][j] != corpus[i][j] {
				t.Fatalf("walk %d token %d changed", i, j)
			}
		}
	}
}

func TestCorpusFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, [][]graph.VertexID{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "1 2 3\n" {
		t.Fatalf("format %q", buf.String())
	}
}

func TestReadCorpusSkipsBlankLines(t *testing.T) {
	got, err := ReadCorpus(strings.NewReader("1 2\n\n3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d walks", len(got))
	}
}

// TestReadCorpusLongLine is the regression test for the scanner token cap:
// a single walk whose line exceeds 1 MiB (the old Buffer max, which made
// ReadCorpus fail with bufio.ErrTooLong) must round-trip intact.
func TestReadCorpusLongLine(t *testing.T) {
	// ~80k tokens of 20-digit IDs ≈ 1.7 MiB on one line.
	long := make([]graph.VertexID, 80_000)
	for i := range long {
		long[i] = 18_400_000_000_000_000_000 + graph.VertexID(i)
	}
	corpus := [][]graph.VertexID{{1, 2}, long, {3}}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= 1<<20 {
		t.Fatalf("test corpus too small to exceed the old cap: %d bytes", buf.Len())
	}
	got, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatalf("ReadCorpus on >1MiB line: %v", err)
	}
	if len(got) != 3 || len(got[1]) != len(long) {
		t.Fatalf("round trip lost walks: %d walks, long walk %d tokens", len(got), len(got[1]))
	}
	for i := range long {
		if got[1][i] != long[i] {
			t.Fatalf("long walk token %d changed", i)
		}
	}
}

func TestReadCorpusRejectsGarbage(t *testing.T) {
	if _, err := ReadCorpus(strings.NewReader("1 x 3\n")); err == nil {
		t.Fatal("garbage token accepted")
	}
}

func TestCorpusStats(t *testing.T) {
	walks, tokens, mean := CorpusStats([][]graph.VertexID{{1, 2, 3}, {4, 5}})
	if walks != 2 || tokens != 5 || mean != 1.5 {
		t.Fatalf("stats %d %d %v", walks, tokens, mean)
	}
	w, tk, m := CorpusStats(nil)
	if w != 0 || tk != 0 || m != 0 {
		t.Fatal("empty stats")
	}
}

func TestCorpusFromDeepWalk(t *testing.T) {
	g := graph.Ring(32)
	corpus, err := DeepWalkCorpus(g, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 32 {
		t.Fatalf("%d walks", len(back))
	}
}
