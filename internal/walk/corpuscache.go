package walk

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"

	"flashwalker/internal/graph"
)

// SCARA-style precomputed walk-corpus cache: random-walk training corpora
// (DeepWalk "sentences") are expensive to generate and fully determined by
// (dataset, spec, seed, start set), so identical jobs can be served from a
// sealed cached copy instead of re-simulating. The cache stores the
// serialized corpus text (the WriteCorpus format trainers consume) sealed
// with a SHA-256 digest verified on every hit, so a corrupted entry can
// never be silently served.

// CorpusKey identifies one precomputed corpus. Every field that influences
// the corpus content is part of the key; there is no other invalidation —
// graphs registered under a name are immutable for a service's lifetime,
// and any spec/seed/start-set change selects a different entry.
type CorpusKey struct {
	// Graph is the registry name of the dataset walked.
	Graph string
	// Spec is the full walk specification (kind, length, stop
	// probability, p/q) the corpus was generated with.
	Spec Spec
	// Seed is the root RNG seed; per-walk streams derive from it.
	Seed uint64
	// WalksPerVertex pins the start set: corpora start WalksPerVertex
	// walks from every vertex (AllStarts order).
	WalksPerVertex int
	// MutationsHash is graph.MutationStream.Hash() over the job's mutation
	// stream: a corpus generated on a mutated graph must never be served
	// for an unmutated job (or a differently mutated one) and vice versa.
	// The empty stream hashes to the zero array, so mutation-free keys are
	// identical to keys minted before this field existed.
	MutationsHash [sha256.Size]byte
}

// CachedCorpus is one sealed cache entry.
type CachedCorpus struct {
	Key CorpusKey
	// Data is the corpus in WriteCorpus text form.
	Data []byte
	// SHA seals Data; Get re-hashes on every hit and refuses to serve a
	// mismatch.
	SHA [sha256.Size]byte
	// Walks/Tokens/MeanHops are the CorpusStats of the corpus.
	Walks    int
	Tokens   int
	MeanHops float64
}

// CorpusCache is a bounded, thread-safe corpus cache with LRU eviction.
type CorpusCache struct {
	mu      sync.Mutex
	max     int
	entries map[CorpusKey]*CachedCorpus
	// order is the LRU list, least recent first.
	order []CorpusKey

	hits   uint64
	misses uint64
}

// NewCorpusCache returns a cache bounded to max entries (min 1).
func NewCorpusCache(max int) *CorpusCache {
	if max < 1 {
		max = 1
	}
	return &CorpusCache{max: max, entries: map[CorpusKey]*CachedCorpus{}}
}

// Seal builds a sealed entry from a generated corpus.
func Seal(key CorpusKey, corpus [][]graph.VertexID) (*CachedCorpus, error) {
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, corpus); err != nil {
		return nil, fmt.Errorf("walk: sealing corpus: %w", err)
	}
	walks, tokens, mean := CorpusStats(corpus)
	c := &CachedCorpus{
		Key: key, Data: buf.Bytes(),
		Walks: walks, Tokens: tokens, MeanHops: mean,
	}
	c.SHA = sha256.Sum256(c.Data)
	return c, nil
}

// Put inserts an entry, evicting the least recently used when full.
func (cc *CorpusCache) Put(c *CachedCorpus) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if _, ok := cc.entries[c.Key]; ok {
		cc.touch(c.Key)
		cc.entries[c.Key] = c
		return
	}
	for len(cc.entries) >= cc.max {
		oldest := cc.order[0]
		cc.order = cc.order[1:]
		delete(cc.entries, oldest)
	}
	cc.entries[c.Key] = c
	cc.order = append(cc.order, c.Key)
}

// Get returns the sealed entry for key, verifying the seal first. A
// corrupted entry is dropped and reported as a miss along with the error.
func (cc *CorpusCache) Get(key CorpusKey) (*CachedCorpus, bool, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	c, ok := cc.entries[key]
	if !ok {
		cc.misses++
		return nil, false, nil
	}
	if got := sha256.Sum256(c.Data); got != c.SHA {
		// Seal broken: never serve it. Evict and treat as a miss so the
		// caller regenerates.
		cc.evict(key)
		cc.misses++
		return nil, false, fmt.Errorf("walk: corpus cache entry for %q failed seal verification", key.Graph)
	}
	cc.touch(key)
	cc.hits++
	return c, true, nil
}

// Stats returns the lifetime hit/miss counters.
func (cc *CorpusCache) Stats() (hits, misses uint64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.hits, cc.misses
}

// Len returns the current entry count.
func (cc *CorpusCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.entries)
}

// touch moves key to the most-recent end of the LRU order (key must be
// present). Caller holds mu.
func (cc *CorpusCache) touch(key CorpusKey) {
	for i, k := range cc.order {
		if k == key {
			copy(cc.order[i:], cc.order[i+1:])
			cc.order[len(cc.order)-1] = key
			return
		}
	}
}

// evict removes key entirely. Caller holds mu.
func (cc *CorpusCache) evict(key CorpusKey) {
	delete(cc.entries, key)
	for i, k := range cc.order {
		if k == key {
			cc.order = append(cc.order[:i], cc.order[i+1:]...)
			return
		}
	}
}
