package walk

import (
	"bytes"
	"testing"

	"flashwalker/internal/graph"
)

func testCorpusEntry(t *testing.T, name string, seed uint64) *CachedCorpus {
	t.Helper()
	g := graph.Ring(16)
	corpus, err := DeepWalkCorpus(g, 1, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	key := CorpusKey{
		Graph: name,
		Spec:  Spec{Kind: Unbiased, Length: 4},
		Seed:  seed, WalksPerVertex: 1,
	}
	c, err := Seal(key, corpus)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusCacheHitMiss(t *testing.T) {
	cc := NewCorpusCache(4)
	c := testCorpusEntry(t, "ring", 1)

	if _, ok, err := cc.Get(c.Key); ok || err != nil {
		t.Fatalf("empty cache returned a hit (ok=%v err=%v)", ok, err)
	}
	cc.Put(c)
	got, ok, err := cc.Get(c.Key)
	if err != nil || !ok {
		t.Fatalf("hit failed: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.Data, c.Data) || got.SHA != c.SHA {
		t.Fatal("hit returned different corpus bytes")
	}
	if h, m := cc.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", h, m)
	}

	// A different seed is a different key — must miss.
	other := testCorpusEntry(t, "ring", 2)
	if _, ok, _ := cc.Get(other.Key); ok {
		t.Fatal("different seed hit the cache")
	}
}

func TestCorpusCacheSealedRoundTrip(t *testing.T) {
	cc := NewCorpusCache(4)
	c := testCorpusEntry(t, "ring", 3)
	cc.Put(c)
	got, ok, err := cc.Get(c.Key)
	if !ok || err != nil {
		t.Fatalf("hit failed: ok=%v err=%v", ok, err)
	}
	corpus, err := ReadCorpus(bytes.NewReader(got.Data))
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != got.Walks {
		t.Fatalf("parsed %d walks, entry says %d", len(corpus), got.Walks)
	}
}

func TestCorpusCacheRefusesBrokenSeal(t *testing.T) {
	cc := NewCorpusCache(4)
	c := testCorpusEntry(t, "ring", 4)
	cc.Put(c)
	c.Data[0] ^= 0xFF // corrupt in place, seal now stale
	if _, ok, err := cc.Get(c.Key); ok || err == nil {
		t.Fatalf("corrupted entry served: ok=%v err=%v", ok, err)
	}
	// The corrupt entry must have been evicted, not served again.
	if cc.Len() != 0 {
		t.Fatalf("corrupt entry still cached (len=%d)", cc.Len())
	}
}

// TestCorpusCacheMutationHashKeys is the regression test for the key bug
// where a corpus generated on a mutated graph could be served for an
// unmutated job (and vice versa): the mutation-stream hash is part of the
// key, so jobs differing only in their stream select distinct entries,
// while a mutation-free job's key is byte-identical to a pre-field key.
func TestCorpusCacheMutationHashKeys(t *testing.T) {
	cc := NewCorpusCache(4)
	plain := testCorpusEntry(t, "ring", 1)
	ms := graph.MutationStream{{Op: graph.OpInsertEdge, Src: 0, Dst: 2}}

	mutated := *plain
	mutated.Key.MutationsHash = ms.Hash()
	cc.Put(plain)
	cc.Put(&mutated)
	if cc.Len() != 2 {
		t.Fatalf("mutated and plain corpora collapsed to %d entries, want 2", cc.Len())
	}

	// A mutation-free job must still hit the entry sealed before the field
	// existed: the empty stream hashes to the zero array.
	key := plain.Key
	key.MutationsHash = graph.MutationStream{}.Hash()
	if _, ok, err := cc.Get(key); !ok || err != nil {
		t.Fatalf("zero-stream key missed the mutation-free entry (ok=%v err=%v)", ok, err)
	}
	// And the mutated job must get the mutated corpus, not the plain one.
	if got, ok, _ := cc.Get(mutated.Key); !ok || got.Key.MutationsHash != ms.Hash() {
		t.Fatalf("mutated-stream key did not select the mutated entry (ok=%v)", ok)
	}
	// A different stream is a different key — must miss.
	other := plain.Key
	other.MutationsHash = graph.MutationStream{{Op: graph.OpDeleteEdge, Src: 0, Dst: 1}}.Hash()
	if _, ok, _ := cc.Get(other); ok {
		t.Fatal("a differently mutated job hit another stream's corpus")
	}
}

func TestCorpusCacheLRUEviction(t *testing.T) {
	cc := NewCorpusCache(2)
	a := testCorpusEntry(t, "a", 1)
	b := testCorpusEntry(t, "b", 1)
	c := testCorpusEntry(t, "c", 1)
	cc.Put(a)
	cc.Put(b)
	if _, ok, _ := cc.Get(a.Key); !ok { // touch a → b is now LRU
		t.Fatal("a missing")
	}
	cc.Put(c) // evicts b
	if _, ok, _ := cc.Get(b.Key); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok, _ := cc.Get(a.Key); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if _, ok, _ := cc.Get(c.Key); !ok {
		t.Fatal("new entry c missing")
	}
}
