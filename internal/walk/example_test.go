package walk_test

import (
	"fmt"

	"flashwalker/internal/graph"
	"flashwalker/internal/walk"
)

// Run fixed-length unbiased walks on a ring: the trajectory is forced, so
// the output is exact.
func ExampleRun() {
	g := graph.Ring(8)
	spec := walk.Spec{Kind: walk.Unbiased, Length: 3}
	ws := walk.NewWalks(spec, []graph.VertexID{2}, 1)
	st, _ := walk.Run(g, spec, ws, 1, func(i int, path []graph.VertexID) {
		fmt.Println("path:", path)
	})
	fmt.Println("hops:", st.TotalHops)
	// Output:
	// path: [2 3 4 5]
	// hops: 3
}

// Estimate PPR scores and rank them.
func ExamplePPREstimate() {
	g := graph.Complete(6)
	ppr, _ := walk.PPREstimate(g, 0, 5000, 0.3, 2)
	top := walk.TopK(ppr, 1)
	fmt.Println("top vertex:", top[0])
	// Output:
	// top vertex: 0
}

// SimRank of a vertex with itself is 1 by definition.
func ExampleSimRank() {
	g := graph.Ring(5)
	s, _ := walk.SimRank(g, 3, 3, 10, 4, 0.6, 1)
	fmt.Println("s(v,v):", s)
	// Output:
	// s(v,v): 1
}
