package walk

import (
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/rng"
)

func TestSecondOrderKindString(t *testing.T) {
	if SecondOrder.String() != "second-order" {
		t.Fatal("kind name")
	}
}

func TestSecondOrderSpecValidate(t *testing.T) {
	g := graph.Ring(8)
	good := Spec{Kind: SecondOrder, Length: 6, P: 0.5, Q: 2}
	if err := good.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Spec{
		{Kind: SecondOrder, Length: 6, P: 0, Q: 1},
		{Kind: SecondOrder, Length: 6, P: 1, Q: -1},
	} {
		if bad.Validate(g) == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
}

func TestSecondOrderWeights(t *testing.T) {
	s := Spec{Kind: SecondOrder, Length: 6, P: 0.25, Q: 2}
	wr, wc, wo, wm := s.SecondOrderWeights()
	if wr != 4 || wc != 1 || wo != 0.5 {
		t.Fatalf("weights %v %v %v", wr, wc, wo)
	}
	if wm != 4 {
		t.Fatalf("max %v", wm)
	}
}

// backtrackGraph is a graph where every edge is bidirectional, so
// returning to prev is always possible.
func backtrackGraph() *graph.Graph {
	b := graph.NewBuilder(32)
	for v := uint64(0); v < 32; v++ {
		for _, d := range []uint64{(v + 1) % 32, (v + 5) % 32, (v + 11) % 32} {
			b.AddEdge(v, d)
			b.AddEdge(d, v)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestChooseEdgeSecondOrderReturnBias(t *testing.T) {
	g := backtrackGraph()
	r := rng.New(1)
	countReturns := func(p float64) int {
		s := Spec{Kind: SecondOrder, Length: 6, P: p, Q: 1}
		returns := 0
		const draws = 5000
		cur, prev := graph.VertexID(0), g.OutEdges(0)[0]
		for i := 0; i < draws; i++ {
			idx, _, _ := s.ChooseEdgeSecondOrder(g, r, cur, prev)
			if g.OutEdges(cur)[idx] == prev {
				returns++
			}
		}
		return returns
	}
	low, high := countReturns(10), countReturns(0.1)
	if high <= 2*low {
		t.Fatalf("p=0.1 returns %d not >> p=10 returns %d", high, low)
	}
}

func TestChooseEdgeSecondOrderProbesCounted(t *testing.T) {
	g := backtrackGraph()
	r := rng.New(2)
	s := Spec{Kind: SecondOrder, Length: 6, P: 1, Q: 1}
	// With p=q=1 every weight is 1: no rejection, at most one probe per
	// draw (and zero when the proposal is prev).
	for i := 0; i < 200; i++ {
		_, probes, rejects := s.ChooseEdgeSecondOrder(g, r, 0, g.OutEdges(0)[0])
		if rejects != 0 {
			t.Fatalf("rejects %d with uniform weights", rejects)
		}
		if probes > 1 {
			t.Fatalf("probes %d per uniform draw", probes)
		}
	}
}

func TestChooseEdgeSecondOrderFilteredMatchesExact(t *testing.T) {
	// With an exact membership oracle the filtered variant is the same
	// sampler.
	g := backtrackGraph()
	s := Spec{Kind: SecondOrder, Length: 6, P: 0.5, Q: 2}
	r1, r2 := rng.New(7), rng.New(7)
	prev := g.OutEdges(5)[1]
	for i := 0; i < 300; i++ {
		a, _, _ := s.ChooseEdgeSecondOrder(g, r1, 5, prev)
		b, _, _ := s.ChooseEdgeSecondOrderFiltered(r2, g.OutEdges(5), prev, func(c graph.VertexID) bool {
			return containsSorted(g.OutEdges(prev), c)
		})
		if a != b {
			t.Fatalf("draw %d: exact %d vs filtered %d", i, a, b)
		}
	}
}

func TestRunSecondOrderCompletes(t *testing.T) {
	g := backtrackGraph()
	spec := Spec{Kind: SecondOrder, Length: 8, P: 0.5, Q: 2}
	ws := NewWalks(spec, UniformStarts(g, 300, 1), 300)
	st, err := Run(g, spec, ws, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 300 {
		t.Fatalf("completed %d", st.Completed)
	}
	if st.TotalHops != 300*8 {
		t.Fatalf("hops %d", st.TotalHops)
	}
}

func TestRunSecondOrderPathsAreEdges(t *testing.T) {
	g := backtrackGraph()
	spec := Spec{Kind: SecondOrder, Length: 6, P: 2, Q: 0.5}
	ws := NewWalks(spec, UniformStarts(g, 50, 2), 50)
	_, err := Run(g, spec, ws, 4, func(i int, path []graph.VertexID) {
		for j := 1; j < len(path); j++ {
			if !containsSorted(g.OutEdges(path[j-1]), path[j]) {
				t.Fatalf("walk %d: %d->%d is not an edge", i, path[j-1], path[j])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSecondOrderReturnRateRespondsToP(t *testing.T) {
	g := backtrackGraph()
	countBacktracks := func(p float64) int {
		spec := Spec{Kind: SecondOrder, Length: 10, P: p, Q: 1}
		ws := NewWalks(spec, UniformStarts(g, 200, 5), 200)
		n := 0
		_, err := Run(g, spec, ws, 6, func(i int, path []graph.VertexID) {
			for j := 2; j < len(path); j++ {
				if path[j] == path[j-2] {
					n++
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	low, high := countBacktracks(10), countBacktracks(0.1)
	if high <= low {
		t.Fatalf("backtracks: p=0.1 %d <= p=10 %d", high, low)
	}
}
