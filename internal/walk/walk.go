// Package walk defines random-walk state and algorithms.
//
// A walk's state follows the paper (§III-B): the ID of its source vertex
// (w.src), its current vertex (w.cur), and its remaining hop budget
// (w.hop). The walk updater's job each step is: draw a random number, turn
// it into an out-edge index, move the walk, decrement the hop counter.
//
// Three algorithm families from §II-A are supported:
//
//   - Unbiased: the next hop is uniform over out-neighbors.
//   - Biased: the next hop is drawn proportionally to edge weights via
//     inverse transform sampling (ITS) — a binary search over the vertex's
//     pre-computed cumulative weight list, costing extra updater cycles.
//   - Restart: unbiased movement with a per-hop termination probability
//     (the "terminates according to some probability" condition; this is
//     the PPR walk when the walk restarts at its source).
package walk

import (
	"context"
	"fmt"

	"flashwalker/internal/errs"
	"flashwalker/internal/graph"
	"flashwalker/internal/rng"
)

// Walk is one walker's state.
type Walk struct {
	Src graph.VertexID // starting vertex, w.src
	Cur graph.VertexID // current vertex, w.cur
	Hop uint32         // remaining hops, w.hop
}

// StateBytes is the storage footprint of a walk record in buffers and on
// flash (8B src + 8B cur + 4B hop).
const StateBytes = 20

// DenseStateBytes is the footprint of a walk buffered for a dense subgraph:
// cur is implied by the buffer entry, so it is not stored (paper §III-D).
const DenseStateBytes = 12

// Kind selects the neighbor-sampling distribution / termination rule.
type Kind int

const (
	// Unbiased walks sample neighbors uniformly and stop after Length hops.
	Unbiased Kind = iota
	// Biased walks sample neighbors by edge weight (ITS) and stop after
	// Length hops. Requires a weighted graph.
	Biased
	// Restart walks move unbiased and additionally stop with probability
	// StopProb after every hop (dynamic termination).
	Restart
	// SecondOrder walks sample by node2vec's p/q weights: the transition
	// distribution depends on the walk's previous vertex (the paper's
	// *dynamic* walk class). Sampling uses rejection: propose a uniform
	// neighbor, accept with probability w/wMax where w is 1/P for
	// returning, 1 for a common neighbor, 1/Q otherwise.
	SecondOrder
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Unbiased:
		return "unbiased"
	case Biased:
		return "biased"
	case Restart:
		return "restart"
	case SecondOrder:
		return "second-order"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec configures a random-walk algorithm.
type Spec struct {
	Kind Kind
	// Length is the hop budget per walk. The paper fixes 6 for all
	// experiments. For Restart it acts as a cap (0 = uncapped is invalid;
	// use a generous cap instead).
	Length uint32
	// StopProb is the per-hop termination probability for Restart walks.
	StopProb float64
	// P and Q are node2vec's return and in-out parameters (SecondOrder
	// walks only).
	P, Q float64
}

// Validate checks the spec against the graph it will run on.
func (s Spec) Validate(g *graph.Graph) error {
	if s.Length == 0 {
		return fmt.Errorf("walk: zero Length: %w", errs.ErrInvalidConfig)
	}
	switch s.Kind {
	case Unbiased:
	case Biased:
		if !g.Weighted() {
			return fmt.Errorf("walk: biased walk on unweighted graph: %w", errs.ErrInvalidConfig)
		}
	case Restart:
		if s.StopProb <= 0 || s.StopProb >= 1 {
			return fmt.Errorf("walk: restart StopProb %v outside (0,1): %w", s.StopProb, errs.ErrInvalidConfig)
		}
	case SecondOrder:
		if s.P <= 0 || s.Q <= 0 {
			return fmt.Errorf("walk: second-order P/Q must be positive (got %v, %v): %w", s.P, s.Q, errs.ErrInvalidConfig)
		}
	default:
		return fmt.Errorf("walk: unknown kind %d: %w", s.Kind, errs.ErrInvalidConfig)
	}
	return nil
}

// SecondOrderWeights returns the three rejection-sampling weights
// (return, common-neighbor, other) and their maximum.
func (s Spec) SecondOrderWeights() (wReturn, wCommon, wOut, wMax float64) {
	wReturn, wCommon, wOut = 1/s.P, 1, 1/s.Q
	wMax = wReturn
	if wCommon > wMax {
		wMax = wCommon
	}
	if wOut > wMax {
		wMax = wOut
	}
	return
}

// ChooseEdgeSecondOrder draws one second-order transition for a walk at
// cur that arrived from prev, by rejection sampling with an exact
// neighbor test on g. It returns the chosen edge index, the number of
// prev-adjacency membership probes issued, and the number of rejected
// proposals (both feed the hardware cost model). cur must have out-edges.
func (s Spec) ChooseEdgeSecondOrder(g *graph.Graph, r *rng.RNG, cur, prev graph.VertexID) (idx uint64, probes, rejects int) {
	return s.chooseSecondOrder(r, g.OutEdges(cur), prev, func(cand graph.VertexID) bool {
		return containsSorted(g.OutEdges(prev), cand)
	})
}

// ChooseEdgeSecondOrderFiltered is ChooseEdgeSecondOrder with a
// caller-supplied neighbor test (e.g. a Bloom filter standing in for the
// previous vertex's adjacency in the in-storage engine).
func (s Spec) ChooseEdgeSecondOrderFiltered(r *rng.RNG, edges []graph.VertexID, prev graph.VertexID,
	isNeighbor func(graph.VertexID) bool) (idx uint64, probes, rejects int) {
	return s.chooseSecondOrder(r, edges, prev, isNeighbor)
}

// chooseSecondOrder is the rejection-sampling core; isNeighbor answers
// "is cand an out-neighbor of prev" (exact or approximate).
func (s Spec) chooseSecondOrder(r *rng.RNG, edges []graph.VertexID, prev graph.VertexID,
	isNeighbor func(graph.VertexID) bool) (idx uint64, probes, rejects int) {
	wReturn, wCommon, wOut, wMax := s.SecondOrderWeights()
	deg := uint64(len(edges))
	for {
		i := r.Uint64n(deg)
		cand := edges[i]
		var w float64
		if cand == prev {
			w = wReturn
		} else {
			probes++
			if isNeighbor(cand) {
				w = wCommon
			} else {
				w = wOut
			}
		}
		if w >= wMax || r.Float64() < w/wMax {
			return i, probes, rejects
		}
		rejects++
	}
}

// ChooseEdge picks an out-edge index for a vertex with deg out-edges and
// cumulative weight list cum (nil when unweighted). It returns the chosen
// index and the number of extra hardware operations beyond the flat
// per-walk cost (the ITS binary search steps for biased walks). deg must
// be > 0.
func (s Spec) ChooseEdge(r *rng.RNG, deg uint64, cum []float32) (idx uint64, extraOps int) {
	if deg == 0 {
		panic("walk: ChooseEdge on dead-end vertex")
	}
	if s.Kind != Biased || cum == nil {
		return r.Uint64n(deg), 0
	}
	// Inverse transform sampling: find the smallest idx with
	// rnd < cum[idx], where rnd is uniform in [0, sumWeight).
	sum := cum[deg-1]
	rnd := float32(r.Float64()) * sum
	lo, hi := uint64(0), deg-1
	for lo < hi {
		extraOps++
		mid := (lo + hi) / 2
		if cum[mid] <= rnd {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, extraOps
}

// TerminatesAfterHop reports whether the walk stops after completing a hop,
// given its post-hop state. Applies the hop budget and, for Restart, the
// stochastic stop.
func (s Spec) TerminatesAfterHop(r *rng.RNG, w *Walk) bool {
	if w.Hop == 0 {
		return true
	}
	if s.Kind == Restart && r.Bool(s.StopProb) {
		return true
	}
	return false
}

// NewWalks creates n walks starting at the given vertices (cycled if n >
// len(starts)), each with the spec's hop budget.
func NewWalks(spec Spec, starts []graph.VertexID, n int) []Walk {
	if len(starts) == 0 || n <= 0 {
		return nil
	}
	out := make([]Walk, n)
	for i := range out {
		v := starts[i%len(starts)]
		out[i] = Walk{Src: v, Cur: v, Hop: spec.Length}
	}
	return out
}

// UniformStarts draws n start vertices uniformly at random.
func UniformStarts(g *graph.Graph, n int, seed uint64) []graph.VertexID {
	if g.NumVertices() == 0 || n <= 0 {
		return nil
	}
	r := rng.New(seed)
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = graph.VertexID(r.Uint64n(g.NumVertices()))
	}
	return out
}

// AllStarts returns every vertex once (GraphWalker's "walks from all
// vertices" mode).
func AllStarts(g *graph.Graph) []graph.VertexID {
	out := make([]graph.VertexID, g.NumVertices())
	for i := range out {
		out[i] = graph.VertexID(i)
	}
	return out
}

// Stats aggregates the outcome of a set of executed walks.
type Stats struct {
	Started    int
	Completed  int // exhausted the hop budget or stochastic stop
	DeadEnded  int // hit a zero-out-degree vertex
	TotalHops  uint64
	Visits     []uint64 // per-vertex visit counts (including the start)
	MaxVisited graph.VertexID
}

// NewStats allocates stats for a graph.
func NewStats(g *graph.Graph) *Stats {
	return &Stats{Visits: make([]uint64, g.NumVertices())}
}

// RecordVisit counts a visit to v.
func (st *Stats) RecordVisit(v graph.VertexID) {
	st.Visits[v]++
	if st.Visits[v] > st.Visits[st.MaxVisited] {
		st.MaxVisited = v
	}
}

// Run executes walks directly on the graph (no hardware simulation). It is
// the reference implementation the simulated engines are validated against,
// and the workhorse behind the example applications. Per-walk RNG streams
// are derived from seed, so results are independent of execution order.
// If trace is non-nil, it receives each walk's full vertex path.
//
// Deprecated: use RunContext, which supports cancellation. Run is
// RunContext with a background context.
func Run(g *graph.Graph, spec Spec, walks []Walk, seed uint64, trace func(i int, path []graph.VertexID)) (*Stats, error) {
	return RunContext(context.Background(), g, spec, walks, seed, trace)
}

// cancelCheckEvery is the walk interval between ctx checks in RunContext.
const cancelCheckEvery = 256

// RunContext is Run with cooperative cancellation: ctx is checked between
// walks (every cancelCheckEvery of them), and on cancellation the partial
// Stats accumulated so far are returned with an error satisfying
// errors.Is(err, errs.ErrCanceled). Per-walk RNG streams are derived from
// (seed, walk index), so the walks that did complete are identical to the
// same walks of an uncanceled run.
func RunContext(ctx context.Context, g *graph.Graph, spec Spec, walks []Walk, seed uint64, trace func(i int, path []graph.VertexID)) (*Stats, error) {
	if err := spec.Validate(g); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	root := rng.New(seed)
	st := NewStats(g)
	st.Started = len(walks)
	var path []graph.VertexID
	noPrev := graph.VertexID(g.NumVertices()) // sentinel: no previous vertex
	for i := range walks {
		if i%cancelCheckEvery == 0 && ctx.Err() != nil {
			return st, &errs.Canceled{Op: "walk", Finished: i, Total: len(walks), Cause: ctx.Err()}
		}
		w := walks[i]
		prev := noPrev
		r := root.Derive(uint64(i))
		if trace != nil {
			path = path[:0]
			path = append(path, w.Cur)
		}
		st.RecordVisit(w.Cur)
		for {
			deg := g.OutDegree(w.Cur)
			if deg == 0 {
				st.DeadEnded++
				break
			}
			var idx uint64
			if spec.Kind == SecondOrder && prev != noPrev {
				idx, _, _ = spec.ChooseEdgeSecondOrder(g, r, w.Cur, prev)
			} else {
				idx, _ = spec.ChooseEdge(r, deg, g.OutCumWeights(w.Cur))
			}
			prev = w.Cur
			w.Cur = g.OutEdges(w.Cur)[idx]
			w.Hop--
			st.TotalHops++
			st.RecordVisit(w.Cur)
			if trace != nil {
				path = append(path, w.Cur)
			}
			if spec.TerminatesAfterHop(r, &w) {
				st.Completed++
				break
			}
		}
		if trace != nil {
			trace(i, path)
		}
	}
	return st, nil
}
