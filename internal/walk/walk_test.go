package walk

import (
	"math"
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/rng"
)

func TestKindString(t *testing.T) {
	if Unbiased.String() != "unbiased" || Biased.String() != "biased" || Restart.String() != "restart" {
		t.Fatal("kind names")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestSpecValidate(t *testing.T) {
	ring := graph.Ring(4)
	wb := graph.NewBuilder(2)
	wb.AddWeightedEdge(0, 1, 1)
	weighted, _ := wb.Build()

	cases := []struct {
		spec Spec
		g    *graph.Graph
		ok   bool
	}{
		{Spec{Kind: Unbiased, Length: 6}, ring, true},
		{Spec{Kind: Unbiased, Length: 0}, ring, false},
		{Spec{Kind: Biased, Length: 6}, ring, false},
		{Spec{Kind: Biased, Length: 6}, weighted, true},
		{Spec{Kind: Restart, Length: 100, StopProb: 0.15}, ring, true},
		{Spec{Kind: Restart, Length: 100, StopProb: 0}, ring, false},
		{Spec{Kind: Restart, Length: 100, StopProb: 1}, ring, false},
		{Spec{Kind: Kind(42), Length: 6}, ring, false},
	}
	for i, c := range cases {
		err := c.spec.Validate(c.g)
		if (err == nil) != c.ok {
			t.Errorf("case %d: err = %v, ok = %v", i, err, c.ok)
		}
	}
}

func TestChooseEdgeUnbiasedUniform(t *testing.T) {
	s := Spec{Kind: Unbiased, Length: 6}
	r := rng.New(1)
	counts := make([]int, 5)
	const draws = 50000
	for i := 0; i < draws; i++ {
		idx, ops := s.ChooseEdge(r, 5, nil)
		if ops != 0 {
			t.Fatal("unbiased choice reported extra ops")
		}
		counts[idx]++
	}
	for i, c := range counts {
		p := float64(c) / draws
		if math.Abs(p-0.2) > 0.01 {
			t.Fatalf("edge %d chosen with p=%v", i, p)
		}
	}
}

func TestChooseEdgeBiasedFollowsWeights(t *testing.T) {
	// Weights 1, 3 -> probabilities 0.25, 0.75.
	cum := []float32{1, 4}
	s := Spec{Kind: Biased, Length: 6}
	r := rng.New(2)
	counts := make([]int, 2)
	const draws = 50000
	for i := 0; i < draws; i++ {
		idx, _ := s.ChooseEdge(r, 2, cum)
		counts[idx]++
	}
	p1 := float64(counts[1]) / draws
	if math.Abs(p1-0.75) > 0.01 {
		t.Fatalf("heavy edge chosen with p=%v, want 0.75", p1)
	}
}

func TestChooseEdgeBiasedOpsLogarithmic(t *testing.T) {
	deg := uint64(1024)
	cum := make([]float32, deg)
	for i := range cum {
		cum[i] = float32(i + 1)
	}
	s := Spec{Kind: Biased, Length: 6}
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		_, ops := s.ChooseEdge(r, deg, cum)
		if ops > 11 {
			t.Fatalf("ITS ops %d exceed log2(1024)+1", ops)
		}
		if ops < 1 {
			t.Fatal("ITS reported no search steps")
		}
	}
}

func TestChooseEdgeBiasedDegreeOne(t *testing.T) {
	s := Spec{Kind: Biased, Length: 6}
	r := rng.New(4)
	idx, ops := s.ChooseEdge(r, 1, []float32{2.5})
	if idx != 0 || ops != 0 {
		t.Fatalf("degree-1 biased choice = (%d,%d)", idx, ops)
	}
}

func TestChooseEdgeDeadEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dead-end ChooseEdge did not panic")
		}
	}()
	Spec{Kind: Unbiased, Length: 1}.ChooseEdge(rng.New(1), 0, nil)
}

func TestTerminatesAfterHop(t *testing.T) {
	s := Spec{Kind: Unbiased, Length: 6}
	r := rng.New(5)
	if !s.TerminatesAfterHop(r, &Walk{Hop: 0}) {
		t.Fatal("exhausted budget did not terminate")
	}
	if s.TerminatesAfterHop(r, &Walk{Hop: 3}) {
		t.Fatal("unbiased walk terminated early")
	}
	// Restart: empirical stop rate near StopProb.
	rs := Spec{Kind: Restart, Length: 100, StopProb: 0.3}
	stops := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if rs.TerminatesAfterHop(r, &Walk{Hop: 50}) {
			stops++
		}
	}
	p := float64(stops) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("restart stop rate %v", p)
	}
}

func TestNewWalks(t *testing.T) {
	spec := Spec{Kind: Unbiased, Length: 6}
	starts := []graph.VertexID{3, 7}
	ws := NewWalks(spec, starts, 5)
	if len(ws) != 5 {
		t.Fatalf("got %d walks", len(ws))
	}
	for i, w := range ws {
		want := starts[i%2]
		if w.Src != want || w.Cur != want || w.Hop != 6 {
			t.Fatalf("walk %d = %+v", i, w)
		}
	}
	if NewWalks(spec, nil, 5) != nil {
		t.Fatal("walks from no starts")
	}
	if NewWalks(spec, starts, 0) != nil {
		t.Fatal("zero walks not nil")
	}
}

func TestUniformStarts(t *testing.T) {
	g := graph.Ring(100)
	s := UniformStarts(g, 1000, 1)
	if len(s) != 1000 {
		t.Fatal("count")
	}
	for _, v := range s {
		if v >= 100 {
			t.Fatalf("start %d out of range", v)
		}
	}
	s2 := UniformStarts(g, 1000, 1)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("UniformStarts not deterministic")
		}
	}
	if UniformStarts(g, 0, 1) != nil {
		t.Fatal("zero starts")
	}
}

func TestAllStarts(t *testing.T) {
	g := graph.Ring(10)
	s := AllStarts(g)
	if len(s) != 10 {
		t.Fatal("count")
	}
	for i, v := range s {
		if v != graph.VertexID(i) {
			t.Fatal("not identity")
		}
	}
}

func TestRunOnRingIsDeterministicPath(t *testing.T) {
	// On a ring every hop is forced, so a 6-hop walk from 0 visits 0..6.
	g := graph.Ring(10)
	spec := Spec{Kind: Unbiased, Length: 6}
	ws := NewWalks(spec, []graph.VertexID{0}, 1)
	var gotPath []graph.VertexID
	st, err := Run(g, spec, ws, 1, func(i int, path []graph.VertexID) {
		gotPath = append(gotPath, path...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.DeadEnded != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.TotalHops != 6 {
		t.Fatalf("TotalHops = %d", st.TotalHops)
	}
	want := []graph.VertexID{0, 1, 2, 3, 4, 5, 6}
	if len(gotPath) != len(want) {
		t.Fatalf("path %v", gotPath)
	}
	for i := range want {
		if gotPath[i] != want[i] {
			t.Fatalf("path %v", gotPath)
		}
	}
	for v := 0; v <= 6; v++ {
		if st.Visits[v] != 1 {
			t.Fatalf("visits %v", st.Visits[:8])
		}
	}
}

func TestRunDeadEnd(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2) // 2 is a sink
	g, _ := b.Build()
	spec := Spec{Kind: Unbiased, Length: 10}
	st, err := Run(g, spec, NewWalks(spec, []graph.VertexID{0}, 1), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadEnded != 1 || st.Completed != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.TotalHops != 2 {
		t.Fatalf("hops %d", st.TotalHops)
	}
}

func TestRunHopConservation(t *testing.T) {
	// On a graph with no dead ends every walk does exactly Length hops.
	g, _ := graph.Uniform(200, 4000, 7)
	// Ensure no dead ends by adding a ring backbone.
	b := graph.NewBuilder(200)
	for v := uint64(0); v < 200; v++ {
		b.AddEdge(v, (v+1)%200)
		for _, d := range g.OutEdges(v) {
			b.AddEdge(v, d)
		}
	}
	g2, _ := b.Build()
	spec := Spec{Kind: Unbiased, Length: 6}
	const n = 500
	ws := NewWalks(spec, UniformStarts(g2, n, 3), n)
	st, err := Run(g2, spec, ws, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != n || st.TotalHops != n*6 {
		t.Fatalf("completed %d, hops %d", st.Completed, st.TotalHops)
	}
	// Visits = starts + hops.
	var visits uint64
	for _, v := range st.Visits {
		visits += v
	}
	if visits != uint64(n)+st.TotalHops {
		t.Fatalf("visit conservation: %d != %d", visits, uint64(n)+st.TotalHops)
	}
}

func TestRunDeterministic(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(512, 4096, 1))
	spec := Spec{Kind: Unbiased, Length: 6}
	ws := NewWalks(spec, UniformStarts(g, 200, 5), 200)
	a, _ := Run(g, spec, ws, 11, nil)
	b, _ := Run(g, spec, ws, 11, nil)
	for v := range a.Visits {
		if a.Visits[v] != b.Visits[v] {
			t.Fatal("Run not deterministic")
		}
	}
	c, _ := Run(g, spec, ws, 12, nil)
	diff := false
	for v := range a.Visits {
		if a.Visits[v] != c.Visits[v] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds gave identical visits")
	}
}

func TestRunRestartLengths(t *testing.T) {
	g := graph.Complete(50)
	spec := Spec{Kind: Restart, Length: 1000, StopProb: 0.2}
	const n = 2000
	ws := NewWalks(spec, UniformStarts(g, n, 2), n)
	st, err := Run(g, spec, ws, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != n {
		t.Fatalf("completed %d", st.Completed)
	}
	// Geometric(0.2) mean = 5 hops.
	mean := float64(st.TotalHops) / n
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("restart mean length %v, want ~5", mean)
	}
}

func TestRunBiasedPrefersHeavyEdges(t *testing.T) {
	// Vertex 0 -> 1 (weight 9), 0 -> 2 (weight 1); 1,2 -> 0.
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 9)
	b.AddWeightedEdge(0, 2, 1)
	b.AddWeightedEdge(1, 0, 1)
	b.AddWeightedEdge(2, 0, 1)
	g, _ := b.Build()
	spec := Spec{Kind: Biased, Length: 2}
	const n = 20000
	ws := NewWalks(spec, []graph.VertexID{0}, n)
	st, err := Run(g, spec, ws, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(st.Visits[1]) / float64(st.Visits[1]+st.Visits[2])
	if math.Abs(ratio-0.9) > 0.01 {
		t.Fatalf("heavy-edge visit share %v, want ~0.9", ratio)
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	g := graph.Ring(4)
	if _, err := Run(g, Spec{Kind: Biased, Length: 6}, nil, 1, nil); err == nil {
		t.Fatal("biased on unweighted accepted")
	}
}

func TestStateSizes(t *testing.T) {
	if StateBytes <= DenseStateBytes {
		t.Fatal("dense walks must be smaller than regular walks")
	}
}
